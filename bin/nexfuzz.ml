(* nexfuzz: oracle-backed differential fuzzing of the XML sorters.

   Each differential case generates a pathological document, sorts it with
   NEXSORT and the baselines across a sampled config matrix (block size,
   memory budget, replacement policy, fusion, encoding, device spec), and
   demands byte-identical agreement with the in-memory reference oracle
   plus a pass through the independent streaming validator and the
   resource-invariant probes.

   Fault-schedule cases re-run the sorter under deterministic fault
   injection — seeded random faults on the internal devices, fail-the-Nth
   write/read on an endpoint, a torn block at a chosen offset — and demand
   that every run either completes with validated output or aborts with
   the typed [Device.Fault], with the memory budget fully restored either
   way.

   A failing case greedily shrinks its document and prints a reproducer
   command line. *)

open Cmdliner
module Ordering = Nexsort.Ordering

let policies = [| Extmem.Frame_arena.Lru; Clock; Mru; Stack |]

(* ------------------------------------------------------------------ *)
(* Config matrix *)

type case_config = {
  ordering_spec : string;
  ordering : Ordering.t;
  config : Nexsort.Config.t;
  cli_flags : string;  (* equivalent nexsort(1) flags, for the reproducer *)
}

let orderings =
  [| "@id"; "tag"; "text"; "(@id;tag)"; "-@id" |]

let differential_config ~seed i =
  let rng = Xmlgen.Splitmix.create (seed + (7919 * i)) in
  let policy = policies.(i mod 4) in
  let fuse = i / 4 mod 2 = 0 in
  let ordering_spec = orderings.(i mod Array.length orderings) in
  let ordering = Ordering.of_spec_string ordering_spec in
  let scan = Ordering.all_scan_evaluable ordering in
  let block_size = [| 512; 1024; 4096 |].(Xmlgen.Splitmix.int rng 3) in
  let memory_blocks = [| 8; 16; 64 |].(Xmlgen.Splitmix.int rng 3) in
  let encoding =
    if scan && i mod 6 = 0 then Nexsort.Config.Packed
    else if i mod 6 = 3 then Nexsort.Config.Plain
    else Nexsort.Config.Dict
  in
  let depth_limit = if i mod 7 = 5 then Some 2 else None in
  let device =
    if i mod 3 = 0 then Extmem.Device_spec.parse "traced/mem" else Extmem.Device_spec.default
  in
  (* decorrelated from the device (i mod 3) and fusion (i / 4 mod 2)
     picks: over a 12-case cycle every (jobs, device, fuse) combination
     appears, so parallel runs are differentially checked on every path *)
  let jobs = [| 1; 2; 4 |].(i / 4 mod 3) in
  let config =
    Nexsort.Config.make ~block_size ~memory_blocks ?depth_limit ~root_fusion:fuse ~encoding
      ~device ~pager_policy:policy ~jobs ()
  in
  let cli_flags =
    Printf.sprintf "-O '%s' -B %d -M %d --policy %s --encoding %s --jobs %d%s%s%s" ordering_spec
      block_size memory_blocks
      (Extmem.Frame_arena.policy_to_string policy)
      (match encoding with Plain -> "plain" | Dict -> "dict" | Packed -> "packed")
      jobs
      (if fuse then "" else " --no-fuse")
      (match depth_limit with None -> "" | Some d -> Printf.sprintf " -d %d" d)
      (if i mod 3 = 0 then " --device traced/mem" else "")
  in
  { ordering_spec; ordering; config; cli_flags }

(* ------------------------------------------------------------------ *)
(* One differential case *)

let to_xml t = Xmlio.Writer.events_to_string (Xmlio.Tree.to_events t)

let element_tags doc =
  let p = Xmlio.Parser.of_string doc in
  let rec go acc =
    match Xmlio.Parser.next p with
    | None -> List.rev acc
    | Some (Xmlio.Event.Start (n, _)) -> go (if List.mem n acc then acc else n :: acc)
    | Some _ -> go acc
  in
  go []

let probe_failures () =
  match Verify.Probes.violations () with
  | [] -> Ok ()
  | v -> Error ("resource probes: " ^ String.concat "; " v)

(* The per-document test behind both the case runner and the shrinker:
   every comparison that can fail, first failure wins. *)
let test_document cc doc =
  let { ordering; config; _ } = cc in
  let depth_limit = config.Nexsort.Config.depth_limit in
  let ( >>= ) r f = Result.bind r f in
  let scan = Ordering.all_scan_evaluable ordering in
  match Verify.Oracle.sort_string ?depth_limit ordering doc with
  | exception e -> Error ("oracle raised " ^ Printexc.to_string e)
  | expected -> (
      Verify.Probes.clear ();
      (match Nexsort.sort_string ~config ~ordering doc with
      | exception e -> Error ("nexsort raised " ^ Printexc.to_string e)
      | out, _report ->
          if out <> expected then Error "nexsort output differs from oracle"
          else Ok ())
      >>= fun () ->
      probe_failures () >>= fun () ->
      (match Verify.Validator.check ?depth_limit ~ordering ~input:doc
               (fst (Nexsort.sort_string ~config ~ordering doc))
       with
      | Ok () -> Ok ()
      | Error e -> Error ("validator rejects nexsort output: " ^ e))
      >>= fun () ->
      (match Baselines.Tree_sort.sort_string ?depth_limit ordering doc with
      | exception e -> Error ("treesort raised " ^ Printexc.to_string e)
      | out -> if out <> expected then Error "treesort output differs from oracle" else Ok ())
      >>= fun () ->
      (if scan && depth_limit = None then
         match Baselines.Keypath_sort.sort_string ~config ~ordering doc with
         | exception e -> Error ("keypath mergesort raised " ^ Printexc.to_string e)
         | out, _ ->
             if out <> expected then Error "keypath mergesort output differs from oracle"
             else Ok ()
       else Ok ())
      >>= fun () ->
      if scan && depth_limit = None then
        (* every element tag targeted: XSort's innermost-first one-level
           sorts compose to the full recursive sort *)
        match Baselines.Xsort.sort_string ~config ~ordering ~targets:(element_tags doc) doc with
        | exception e -> Error ("xsort raised " ^ Printexc.to_string e)
        | out, _ -> if out <> expected then Error "xsort output differs from oracle" else Ok ()
      else Ok ())

(* ------------------------------------------------------------------ *)
(* Shrinking: greedily delete one subtree at a time while the failure
   persists.  Documents are <= a few hundred elements, so the quadratic
   sweep is fine; [fuel] bounds re-runs of the (multi-sort) predicate. *)

let remove_nth k l = List.filteri (fun i _ -> i <> k) l

let replace_nth k x l = List.mapi (fun i y -> if i = k then x else y) l

let rec removals t =
  match t with
  | Xmlio.Tree.Text _ -> []
  | Xmlio.Tree.Element e ->
      let drop =
        List.mapi
          (fun k _ -> Xmlio.Tree.Element { e with Xmlio.Tree.children = remove_nth k e.Xmlio.Tree.children })
          e.Xmlio.Tree.children
      in
      let inner =
        List.concat
          (List.mapi
             (fun k c ->
               List.map
                 (fun c' ->
                   Xmlio.Tree.Element { e with Xmlio.Tree.children = replace_nth k c' e.Xmlio.Tree.children })
                 (removals c))
             e.Xmlio.Tree.children)
      in
      drop @ inner
  [@@warning "-9"]

let shrink fails doc =
  let fuel = ref 400 in
  let still_fails d =
    if !fuel <= 0 then false
    else begin
      decr fuel;
      Result.is_error (fails d)
    end
  in
  let rec go doc =
    match Xmlio.Tree.of_string doc with
    | exception _ -> doc
    | t -> (
        let next =
          List.find_map
            (fun t' ->
              let d = to_xml t' in
              if still_fails d then Some d else None)
            (removals t)
        in
        match next with Some d -> go d | None -> doc)
  in
  go doc

(* ------------------------------------------------------------------ *)
(* Fault schedules *)

(* Torn write: block [n] is half-persisted (zeroed from [offset]) and the
   fault is raised after the damage — the failure mode fsync papers call a
   torn page.  The sorter must surface the typed error, not the torn
   data. *)
let torn_layer ~n ~offset =
  Extmem.Layer.make ~name:"torn" (fun inner ->
      let count = ref 0 in
      {
        inner with
        Extmem.Backend.write_block =
          (fun i buf ->
            incr count;
            if !count = n then begin
              let off = min offset (Bytes.length buf - 1) in
              Bytes.fill buf off (Bytes.length buf - off) '\x00';
              inner.Extmem.Backend.write_block i buf;
              raise (Extmem.Backend.Fault (Extmem.Backend.Write, i))
            end
            else inner.Extmem.Backend.write_block i buf);
      })

let nth_fault_layer ~op ~n =
  let count = ref 0 in
  Extmem.Layer.fault_hook (fun o _ ->
      o = op
      && begin
           incr count;
           !count = n
         end)

type fault_outcome = Completed | Aborted

(* A fault case either completes (the schedule never fired) with oracle-
   validated output, or aborts with the typed fault; anything else — a
   different exception, a leaked budget block, bad output — fails. *)
let run_fault_case ~seed j =
  let doc_seed = seed + 104729 + (31 * j) in
  let doc, _ =
    Xmlgen.Gen.to_string (Xmlgen.Gen.pathological ~seed:doc_seed ~max_elements:250)
  in
  let ordering = Ordering.by_attr "id" in
  let policy = policies.(j mod 4) in
  let fuse = j / 4 mod 2 = 0 in
  let block_size = 512 in
  let kind = j mod 3 in
  (* decorrelated from the fault kind (j mod 3): faults must also abort
     cleanly when they fire inside a worker domain *)
  let jobs = [| 1; 2; 4 |].(j / 4 mod 3) in
  let device =
    if kind = 0 then
      Extmem.Device_spec.parse (Printf.sprintf "faulty:p=0.02,seed=%d/mem" (seed + j))
    else Extmem.Device_spec.default
  in
  let config =
    Nexsort.Config.make ~block_size ~memory_blocks:16 ~root_fusion:fuse ~device
      ~pager_policy:policy ~jobs ()
  in
  let ( >>= ) r f = Result.bind r f in
  Verify.Probes.clear ();
  let sort_endpoints ~prep =
    (* replicate sort_string over explicit devices so endpoint layers can
       be installed *)
    let input = Extmem.Device.of_string ~name:"input" ~block_size doc in
    let output = Extmem.Device.in_memory ~name:"output" ~block_size () in
    prep ~input ~output;
    match Nexsort.sort_device ~config ~ordering ~input ~output () with
    | _report -> Ok (Completed, Some (Extmem.Device.contents output))
    | exception Extmem.Device.Fault _ -> Ok (Aborted, None)
  in
  let outcome =
    match kind with
    | 0 -> (
        (* seeded random faults on the sorter's internal devices *)
        match Nexsort.sort_string ~config ~ordering doc with
        | out, _ -> Ok (Completed, Some out)
        | exception Extmem.Device.Fault _ -> Ok (Aborted, None))
    | 1 ->
        (* fail the Nth endpoint I/O: odd cases the output write, even
           cases the input read *)
        let n = 1 + (j / 3 mod 12) in
        let op = if j / 6 mod 2 = 0 then Extmem.Backend.Write else Extmem.Backend.Read in
        sort_endpoints ~prep:(fun ~input ~output ->
            match op with
            | Extmem.Backend.Write ->
                Extmem.Device.push_layer output (nth_fault_layer ~op ~n)
            | Extmem.Backend.Read -> Extmem.Device.push_layer input (nth_fault_layer ~op ~n))
    | _ ->
        let n = 1 + (j / 3 mod 10) in
        let offset = j * 37 mod block_size in
        sort_endpoints ~prep:(fun ~input:_ ~output ->
            Extmem.Device.push_layer output (torn_layer ~n ~offset))
  in
  (match outcome with
  | Error e -> Error e
  | Ok (Completed, Some out) -> (
      match Verify.Oracle.sort_string ordering doc with
      | expected when out = expected -> Ok Completed
      | _ -> Error "fault case completed but output differs from oracle"
      | exception e -> Error ("oracle raised " ^ Printexc.to_string e))
  | Ok (Aborted, _) -> Ok Aborted
  | Ok (Completed, None) -> Error "internal: completed without output")
  >>= fun o -> probe_failures () >>= fun () -> Ok o

(* ------------------------------------------------------------------ *)
(* Update-ingest schedules: a seeded edit script runs through
   [Xmerge.Ingest] (external PQ buffering + flush merges), sweeping
   fault injection and memory pressure.  Every flush must leave a
   document the independent validator accepts as recursively sorted, or
   the run must abort with the typed fault/exhaustion — nothing in
   between — and the resource probes must stay quiet either way. *)

exception Update_fail of string

let run_update_case ~seed j =
  let case_seed = seed + 224737 + (61 * j) in
  let rng = Xmlgen.Splitmix.create case_seed in
  let base, _ = Xmlgen.Gen.to_string (Xmlgen.Gen.pathological ~seed:case_seed ~max_elements:120) in
  let ordering = Ordering.by_attr "id" in
  let policy = policies.(j mod 4) in
  let kind = j mod 3 in
  let device =
    if kind = 0 then
      (* seeded random faults on every internal device: the initial sort,
         the flush merge passes and the queue's spill runs all feel them *)
      Extmem.Device_spec.parse (Printf.sprintf "faulty:p=0.05,seed=%d/mem" (seed + j))
    else Extmem.Device_spec.default
  in
  (* kind 2 starves the queue's insert tier so flushes ride on spilled
     runs (and compactions) instead of the in-memory heap *)
  let memory_blocks = if kind = 2 then 8 else 16 in
  let config =
    Nexsort.Config.make ~block_size:512 ~memory_blocks ~device ~pager_policy:policy ()
  in
  let root, tops =
    match Xmlio.Tree.of_string base with
    | Xmlio.Tree.Element e ->
        (e, List.filter_map (function Xmlio.Tree.Element c -> Some c | _ -> None) e.Xmlio.Tree.children)
    | Xmlio.Tree.Text _ | (exception _) -> assert false
  in
  let key_attr (e : Xmlio.Tree.element) =
    match List.assoc_opt "id" e.Xmlio.Tree.attrs with Some v -> "id:" ^ v | None -> "null"
  in
  let gen_op used =
    let fresh () =
      let id = Printf.sprintf "n%d" (Xmlgen.Splitmix.int rng 1000) in
      ( "id:" ^ id,
        Xmlio.Tree.Element
          { Xmlio.Tree.name = "upd"; attrs = [ ("id", id); ("v", id) ]; children = [] } )
    in
    let existing () =
      let e = List.nth tops (Xmlgen.Splitmix.int rng (List.length tops)) in
      let marked op children =
        Xmlio.Tree.Element
          { e with Xmlio.Tree.attrs = ("__op", op) :: e.Xmlio.Tree.attrs; children }
      in
      ( key_attr e,
        match Xmlgen.Splitmix.int rng 3 with
        | 0 -> marked "delete" []
        | 1 -> marked "replace" [ Xmlio.Tree.Text (Printf.sprintf "r%d" j) ]
        | _ ->
            Xmlio.Tree.Element
              { e with Xmlio.Tree.attrs = ("w", "1") :: e.Xmlio.Tree.attrs; children = [] } )
    in
    let k, op = if tops = [] || Xmlgen.Splitmix.int rng 2 = 0 then fresh () else existing () in
    if List.mem k used then None else Some (k, op)
  in
  let gen_doc () =
    let n_ops = 1 + Xmlgen.Splitmix.int rng 3 in
    let rec go used acc n =
      if n = 0 then List.rev acc
      else
        match gen_op used with
        | None -> go used acc (n - 1)
        | Some (k, op) -> go (k :: used) (op :: acc) (n - 1)
    in
    to_xml (Xmlio.Tree.Element { root with Xmlio.Tree.children = go [] [] n_ops })
  in
  let docs = List.init (3 + (j mod 4)) (fun _ -> gen_doc ()) in
  let ( >>= ) r f = Result.bind r f in
  Verify.Probes.clear ();
  let outcome =
    match Xmerge.Ingest.create ~config ~ordering ~base () with
    | exception (Extmem.Device.Fault _ | Extmem.Memory_budget.Exhausted _) -> Ok Aborted
    | exception e -> Error ("ingest create raised " ^ Printexc.to_string e)
    | t ->
        Fun.protect
          ~finally:(fun () -> Xmerge.Ingest.destroy t)
          (fun () ->
            let validate_flush () =
              ignore (Xmerge.Ingest.flush t);
              let out = Xmerge.Ingest.contents t in
              let rep = Verify.Validator.of_string ~ordering out in
              match rep.Verify.Validator.findings with
              | [] -> ()
              | f :: _ ->
                  raise
                    (Update_fail
                       (Printf.sprintf "flush left an unsorted document (at %s)"
                          f.Verify.Validator.path))
            in
            match
              List.iteri
                (fun i doc ->
                  Xmerge.Ingest.add_update t doc;
                  if (i + Xmlgen.Splitmix.int rng 2) mod 2 = 0 then validate_flush ())
                docs;
              if Xmerge.Ingest.pending t > 0 then validate_flush ()
            with
            | () -> Ok Completed
            | exception (Extmem.Device.Fault _ | Extmem.Memory_budget.Exhausted _) -> Ok Aborted
            | exception Update_fail msg -> Error msg
            | exception e -> Error ("ingest raised " ^ Printexc.to_string e))
  in
  outcome >>= fun o -> probe_failures () >>= fun () -> Ok o

(* ------------------------------------------------------------------ *)
(* Multi-tenant pass: the same differential case matrix, but every
   NEXSORT run goes through one shared [Engine], [tenants] domains deep.
   The schedule is deterministic — case [i] belongs to tenant
   [i mod tenants] — so a reproducer line carrying the seed and the
   tenant count replays the same interleaving pressure.  Oracle outputs
   are precomputed in the main domain; tenant domains only sort through
   the engine and compare.  The engine budget admits the largest case
   alone, so concurrent tenants exercise the admission queue. *)

let run_tenant_pass ~seed ~tenants ~cases ~only ~verbose failures =
  let indices = match only with Some k -> [ k ] | None -> List.init cases Fun.id in
  let prepared =
    List.map
      (fun i ->
        let cc = differential_config ~seed i in
        let doc, _ =
          Xmlgen.Gen.to_string
            (Xmlgen.Gen.pathological ~seed:(seed + (7919 * i))
               ~max_elements:(40 + (i * 13 mod 160)))
        in
        let expected =
          match
            Verify.Oracle.sort_string ?depth_limit:cc.config.Nexsort.Config.depth_limit
              cc.ordering doc
          with
          | s -> Ok s
          | exception e -> Error ("oracle raised " ^ Printexc.to_string e)
        in
        if verbose then
          Printf.eprintf "tenant case %d -> t%d: %d bytes, %s\n%!" i
            (i mod tenants) (String.length doc) cc.cli_flags;
        (i, cc, doc, expected))
      indices
  in
  let engine_bs = 4096 in
  let engine_blocks cc =
    let bytes =
      (Nexsort.Session.job_blocks cc.config + Nexsort.Session.ext_blocks cc.config)
      * cc.config.Nexsort.Config.block_size
    in
    (bytes + engine_bs - 1) / engine_bs
  in
  let max_job =
    List.fold_left (fun acc (_, cc, _, _) -> max acc (engine_blocks cc)) 1 prepared
  in
  let eng =
    Engine.create ~memory_blocks:(max_job + (max_job / 2)) ~block_size:engine_bs ()
  in
  let results = Array.make (List.length prepared) None in
  let run_case t pos (i, cc, doc, expected) =
    let r =
      match expected with
      | Error e -> Some e
      | Ok expected -> (
          match
            Engine.run eng
              ~name:(Printf.sprintf "case%d" i)
              ~tenant:(Printf.sprintf "t%d" t) cc.config
              (fun _job session ->
                let block_size = cc.config.Nexsort.Config.block_size in
                let input = Extmem.Device.of_string ~name:"input" ~block_size doc in
                let output = Extmem.Device.in_memory ~name:"output" ~block_size () in
                let (_ : Nexsort.Sorter.report) =
                  Nexsort.sort_device ~session ~ordering:cc.ordering ~input ~output ()
                in
                Extmem.Device.contents output)
          with
          | out ->
              if out = expected then None
              else Some "engine-path output differs from oracle"
          | exception e -> Some ("engine-path sort raised " ^ Printexc.to_string e))
    in
    results.(pos) <- r
  in
  let domains =
    List.init tenants (fun t ->
        Domain.spawn (fun () ->
            List.iteri (fun pos case -> if pos mod tenants = t then run_case t pos case) prepared))
  in
  List.iter Domain.join domains;
  let leaked = Engine.leaked_blocks eng in
  let still_used = Extmem.Memory_budget.used_blocks (Engine.budget eng) in
  Engine.destroy eng;
  List.iteri
    (fun pos (i, cc, doc, _) ->
      match results.(pos) with
      | None -> ()
      | Some msg ->
          incr failures;
          Printf.eprintf "FAIL tenant case %d (tenant %d of %d): %s\n" i (pos mod tenants)
            tenants msg;
          Printf.eprintf "  reproduce: nexfuzz --seed %d --tenants %d --only %d\n" seed tenants i;
          Printf.eprintf "  equivalent: nexsort %s <doc.xml>\n" cc.cli_flags;
          Printf.eprintf "  document (%d bytes):\n%s\n" (String.length doc) doc)
    prepared;
  if leaked <> 0 || still_used <> 0 then begin
    incr failures;
    Printf.eprintf
      "FAIL tenant pass: engine not quiescent after join (%d leaked, %d still carved)\n" leaked
      still_used;
    Printf.eprintf "  reproduce: nexfuzz --seed %d --tenants %d\n" seed tenants
  end

(* ------------------------------------------------------------------ *)
(* Driver *)

let print_failure ~seed ~kind ~case ~cli_flags ~doc msg =
  Printf.eprintf "FAIL %s case %d: %s\n" kind case msg;
  Printf.eprintf "  reproduce: nexfuzz --seed %d --only %d%s\n" seed case
    (if kind = "fault" then " --faults-only" else "");
  Printf.eprintf "  equivalent: nexsort %s <doc.xml>\n" cli_flags;
  Printf.eprintf "  document (%d bytes):\n%s\n" (String.length doc) doc

let run smoke seed cases fault_cases update_cases only faults_only updates_only tenants verbose =
  let seed, cases, fault_cases, update_cases =
    if smoke then (42, 50, 24, 16) else (seed, cases, fault_cases, update_cases)
  in
  if tenants < 1 then begin
    Printf.eprintf "nexfuzz: --tenants must be >= 1\n";
    exit 2
  end;
  (* a validator that cannot reject is worthless: prove it can, first *)
  (match Verify.Validator.self_test () with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "validator self-test failed: %s\n" e;
      exit 2);
  Verify.Probes.install ();
  let failures = ref 0 in
  let run_differential i =
    let cc = differential_config ~seed i in
    let doc_seed = seed + (7919 * i) in
    let doc, _ =
      Xmlgen.Gen.to_string
        (Xmlgen.Gen.pathological ~seed:doc_seed ~max_elements:(40 + (i * 13 mod 160)))
    in
    if verbose then
      Printf.eprintf "case %d: %d bytes, %s\n%!" i (String.length doc) cc.cli_flags;
    match test_document cc doc with
    | Ok () -> ()
    | Error msg ->
        incr failures;
        let doc = shrink (test_document cc) doc in
        print_failure ~seed ~kind:"differential" ~case:i ~cli_flags:cc.cli_flags ~doc msg
  in
  let faulted = ref 0 in
  let completed = ref 0 in
  let run_fault j =
    if verbose then Printf.eprintf "fault case %d\n%!" j;
    match run_fault_case ~seed j with
    | Ok Aborted -> incr faulted
    | Ok Completed -> incr completed
    | Error msg ->
        incr failures;
        let doc, _ =
          Xmlgen.Gen.to_string
            (Xmlgen.Gen.pathological ~seed:(seed + 104729 + (31 * j)) ~max_elements:250)
        in
        print_failure ~seed ~kind:"fault" ~case:j
          ~cli_flags:
            (Printf.sprintf "--policy %s --jobs %d"
               (Extmem.Frame_arena.policy_to_string policies.(j mod 4))
               [| 1; 2; 4 |].(j / 4 mod 3))
          ~doc msg
  in
  let updates_aborted = ref 0 in
  let updates_completed = ref 0 in
  let run_update j =
    if verbose then Printf.eprintf "update case %d\n%!" j;
    match run_update_case ~seed j with
    | Ok Aborted -> incr updates_aborted
    | Ok Completed -> incr updates_completed
    | Error msg ->
        incr failures;
        Printf.eprintf "FAIL update case %d: %s\n" j msg;
        Printf.eprintf "  reproduce: nexfuzz --seed %d --updates --only %d\n" seed j
  in
  (match only with
  | Some k ->
      if updates_only then run_update k
      else if faults_only then run_fault k
      else if tenants > 1 then
        run_tenant_pass ~seed ~tenants ~cases ~only:(Some k) ~verbose failures
      else run_differential k
  | None ->
      if (not faults_only) && not updates_only then begin
        if tenants > 1 then run_tenant_pass ~seed ~tenants ~cases ~only:None ~verbose failures
        else
          for i = 0 to cases - 1 do
            run_differential i
          done
      end;
      if not updates_only then
        for j = 0 to fault_cases - 1 do
          run_fault j
        done;
      if not faults_only then
        for j = 0 to update_cases - 1 do
          run_update j
        done);
  (match only with
  | Some _ -> ()
  | None ->
      Printf.printf "nexfuzz: seed %d\n" seed;
      if (not faults_only) && not updates_only then
        if tenants > 1 then
          Printf.printf "differential: %d cases through one engine across %d tenants\n" cases
            tenants
        else
          Printf.printf
            "differential: %d cases across %d policies x fuse/no-fuse x %d orderings\n" cases
            (Array.length policies) (Array.length orderings);
      if not updates_only then
        Printf.printf "fault schedules: %d cases (%d aborted cleanly, %d completed validated)\n"
          fault_cases !faulted !completed;
      if not faults_only then
        Printf.printf
          "update-ingest schedules: %d cases (%d aborted cleanly, %d completed validated)\n"
          update_cases !updates_aborted !updates_completed);
  if !failures = 0 then begin
    Printf.printf "all checks passed\n";
    `Ok ()
  end
  else `Error (false, Printf.sprintf "%d case(s) failed" !failures)

let smoke_term =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "Run the fixed-seed smoke configuration (seed 42, 50 differential + 24 fault cases) \
           regardless of other options — the configuration wired into the test suite.")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Base seed for documents and configs.")

let cases_term =
  Arg.(value & opt int 50 & info [ "cases" ] ~docv:"N" ~doc:"Number of differential cases.")

let fault_cases_term =
  Arg.(
    value & opt int 24 & info [ "fault-cases" ] ~docv:"N" ~doc:"Number of fault-schedule cases.")

let update_cases_term =
  Arg.(
    value & opt int 16
    & info [ "update-cases" ] ~docv:"N" ~doc:"Number of update-ingest schedule cases.")

let only_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "only" ] ~docv:"K" ~doc:"Run only case $(docv) (reproducing a reported failure).")

let faults_only_term =
  Arg.(
    value & flag
    & info [ "faults-only" ] ~doc:"Run only the fault-schedule cases ($(b,--only) selects among them).")

let updates_only_term =
  Arg.(
    value & flag
    & info [ "updates" ]
        ~doc:
          "Run only the update-ingest schedule cases: seeded edit scripts through the \
           incremental-maintenance path under fault injection and memory pressure \
           ($(b,--only) selects among them).")

let tenants_term =
  Arg.(
    value & opt int 1
    & info [ "tenants" ] ~docv:"K"
        ~doc:
          "Run the differential cases through one shared multi-tenant engine, $(docv) tenant \
           domains deep.  Case $(i,i) belongs to tenant $(i,i) mod $(docv), so the schedule is \
           reproducible from the seed.  Each case checks the engine-path sort against the \
           oracle under concurrent admission pressure; the baseline cross-checks run in the \
           default single-tenant mode.")

let verbose_term =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print each case's configuration.")

let cmd =
  let doc = "differential fuzzing of the XML sorters against an in-memory oracle" in
  let info = Cmd.info "nexfuzz" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ smoke_term $ seed_term $ cases_term $ fault_cases_term $ update_cases_term
       $ only_term $ faults_only_term $ updates_only_term $ tenants_term $ verbose_term))

let () = exit (Cmd.eval cmd)
