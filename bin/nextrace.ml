(* nextrace: offline analysis of nexsort --trace files.

   Loads a Chrome trace_event JSON timeline (as written by Obs.Tracer),
   rebuilds per-track span trees, and prints a self-profile: top spans
   by self-time, per-worker busy/idle/barrier breakdown, and I/O latency
   percentiles per device.  --diff compares two traces side by side
   (e.g. a -j1 run against a -j4 run). *)

open Cmdliner

type agg = { mutable a_count : int; mutable a_total : int; mutable a_self : int (* ns *) }

type track_profile = {
  tp_tid : int;
  tp_name : string;
  tp_spans : (string, agg) Hashtbl.t;
  tp_order : string list ref; (* span names, first-seen order *)
  tp_instants : (string, int ref) Hashtbl.t;
  tp_counters : (string, int) Hashtbl.t; (* last value wins *)
  mutable tp_events : int;
}

type trace = {
  tr_path : string;
  tr_tracks : track_profile list; (* tid order *)
  tr_events : int;
  tr_min_ns : int;
  tr_max_ns : int;
  (* per-I/O Complete durations, keyed by event name (read:dev/write:dev) *)
  tr_io : (string, int list ref) Hashtbl.t;
  tr_io_order : string list ref;
}

(* a failed open raises Sys_error whose message already names the path,
   so it skips the load-error prefix below *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let span_agg tp name =
  match Hashtbl.find_opt tp.tp_spans name with
  | Some a -> a
  | None ->
      let a = { a_count = 0; a_total = 0; a_self = 0 } in
      Hashtbl.add tp.tp_spans name a;
      tp.tp_order := name :: !(tp.tp_order);
      a

let is_io_event name =
  String.length name > 5
  && (String.sub name 0 5 = "read:" || String.sub name 0 6 = "write:")

(* Replay one track's records through a span stack, attributing child
   time to parents so self-time = total - children.  Complete events
   (per-I/O latencies) count as children of the enclosing span. *)
let process_track tp records trace =
  let stack = ref [] in
  List.iter
    (fun (r : Obs.Tracer.record) ->
      tp.tp_events <- tp.tp_events + 1;
      let open Obs.Tracer in
      match r.r_kind with
      | Begin -> stack := (r.r_name, r.r_ts_ns, ref 0) :: !stack
      | End -> (
          match !stack with
          | (name, ts0, kids) :: rest when name = r.r_name ->
              stack := rest;
              let dur = r.r_ts_ns - ts0 in
              let a = span_agg tp name in
              a.a_count <- a.a_count + 1;
              a.a_total <- a.a_total + dur;
              a.a_self <- a.a_self + dur - !kids;
              (match rest with (_, _, pk) :: _ -> pk := !pk + dur | [] -> ())
          | _ -> failwith (Printf.sprintf "unbalanced End event %S" r.r_name))
      | Instant -> (
          match Hashtbl.find_opt tp.tp_instants r.r_name with
          | Some c -> incr c
          | None -> Hashtbl.add tp.tp_instants r.r_name (ref 1))
      | Count -> Hashtbl.replace tp.tp_counters r.r_name r.r_value
      | Complete ->
          let a = span_agg tp r.r_name in
          a.a_count <- a.a_count + 1;
          a.a_total <- a.a_total + r.r_value;
          a.a_self <- a.a_self + r.r_value;
          (match !stack with (_, _, pk) :: _ -> pk := !pk + r.r_value | [] -> ());
          if is_io_event r.r_name then begin
            (match Hashtbl.find_opt trace.tr_io r.r_name with
            | Some l -> l := r.r_value :: !l
            | None ->
                trace.tr_io_order := r.r_name :: !(trace.tr_io_order);
                Hashtbl.add trace.tr_io r.r_name (ref [ r.r_value ]))
          end)
    records

let load path =
  let text = read_file path in
  let json =
    try Obs.Json.of_string text with Failure msg -> failwith ("not a trace (" ^ msg ^ ")")
  in
  let fields =
    match json with
    | Obs.Json.Obj f -> f
    | _ -> failwith "not a trace (top level is not an object)"
  in
  let events =
    match List.assoc_opt "traceEvents" fields with
    | Some (Obs.Json.List l) -> l
    | _ -> failwith "not a trace (missing traceEvents array)"
  in
  let names = Hashtbl.create 8 in
  (* tid -> track name, from thread_name metadata *)
  let by_tid = Hashtbl.create 8 in
  (* tid -> reversed record list *)
  let tid_order = ref [] in
  let n_records = ref 0 in
  let min_ns = ref max_int and max_ns = ref 0 in
  List.iter
    (fun ev ->
      let is_meta =
        match ev with
        | Obs.Json.Obj f -> List.assoc_opt "ph" f = Some (Obs.Json.Str "M")
        | _ -> false
      in
      if is_meta then begin
        match ev with
        | Obs.Json.Obj f -> (
            match (List.assoc_opt "tid" f, List.assoc_opt "args" f) with
            | Some (Obs.Json.Int tid), Some (Obs.Json.Obj a) -> (
                match List.assoc_opt "name" a with
                | Some (Obs.Json.Str n) -> Hashtbl.replace names tid n
                | _ -> failwith "metadata event without args.name")
            | _ -> failwith "metadata event without tid")
        | _ -> assert false
      end
      else begin
        let r, tid = Obs.Tracer.record_of_json ev in
        if r.Obs.Tracer.r_ts_ns < 0 then failwith "negative timestamp";
        incr n_records;
        if r.Obs.Tracer.r_ts_ns < !min_ns then min_ns := r.Obs.Tracer.r_ts_ns;
        let fin =
          r.Obs.Tracer.r_ts_ns
          + (match r.Obs.Tracer.r_kind with Obs.Tracer.Complete -> r.Obs.Tracer.r_value | _ -> 0)
        in
        if fin > !max_ns then max_ns := fin;
        match Hashtbl.find_opt by_tid tid with
        | Some l -> l := r :: !l
        | None ->
            tid_order := tid :: !tid_order;
            Hashtbl.add by_tid tid (ref [ r ])
      end)
    events;
  let trace =
    {
      tr_path = path;
      tr_tracks = [];
      tr_events = !n_records;
      tr_min_ns = (if !min_ns = max_int then 0 else !min_ns);
      tr_max_ns = !max_ns;
      tr_io = Hashtbl.create 8;
      tr_io_order = ref [];
    }
  in
  let tracks =
    List.rev_map
      (fun tid ->
        let name =
          match Hashtbl.find_opt names tid with
          | Some n -> n
          | None -> failwith (Printf.sprintf "track %d has no thread_name metadata" tid)
        in
        let tp =
          {
            tp_tid = tid;
            tp_name = name;
            tp_spans = Hashtbl.create 16;
            tp_order = ref [];
            tp_instants = Hashtbl.create 8;
            tp_counters = Hashtbl.create 8;
            tp_events = 0;
          }
        in
        process_track tp (List.rev !(Hashtbl.find by_tid tid)) trace;
        tp)
      !tid_order
  in
  { trace with tr_tracks = tracks }

let ms ns = float_of_int ns /. 1e6
let us ns = float_of_int ns /. 1e3

let dropped trace =
  List.fold_left
    (fun acc tp ->
      acc + match Hashtbl.find_opt tp.tp_counters "trace.dropped" with Some v -> v | None -> 0)
    0 trace.tr_tracks

(* --- self-profile --- *)

let top_spans trace =
  List.concat_map
    (fun tp ->
      List.rev_map (fun name -> (tp.tp_name, name, Hashtbl.find tp.tp_spans name)) !(tp.tp_order))
    trace.tr_tracks
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b.a_self a.a_self)

let is_worker tp =
  String.length tp.tp_name >= 7 && String.sub tp.tp_name 0 7 = "worker "

let span_total tp name =
  match Hashtbl.find_opt tp.tp_spans name with Some a -> a.a_total | None -> 0

let span_count tp name =
  match Hashtbl.find_opt tp.tp_spans name with Some a -> a.a_count | None -> 0

let sort_by_name = List.sort (fun a b -> compare a.tp_name b.tp_name)

let print_workers trace =
  let workers = sort_by_name (List.filter is_worker trace.tr_tracks) in
  if workers <> [] then begin
    Printf.printf "\nworkers:\n";
    Printf.printf "  %-12s %10s %10s %6s\n" "track" "busy ms" "idle ms" "tasks";
    List.iter
      (fun tp ->
        let busy = span_total tp "task:sort" + span_total tp "task:copy" in
        let tasks = span_count tp "task:sort" + span_count tp "task:copy" in
        Printf.printf "  %-12s %10.3f %10.3f %6d\n" tp.tp_name (ms busy)
          (ms (span_total tp "worker.idle"))
          tasks)
      workers;
    let main = List.find_opt (fun tp -> tp.tp_name = "main") trace.tr_tracks in
    match main with
    | Some tp ->
        let drains = span_count tp "pool.drain" in
        if drains > 0 then
          Printf.printf "  barrier: pool.drain %d time(s), %.3f ms total\n" drains
            (ms (span_total tp "pool.drain"));
        let waits = span_count tp "pool.submit.wait" in
        if waits > 0 then
          Printf.printf "  backpressure: pool.submit.wait %d time(s), %.3f ms total\n" waits
            (ms (span_total tp "pool.submit.wait"))
    | None -> ()
  end

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    sorted.(rank - 1)
  end

let print_io trace =
  if !(trace.tr_io_order) <> [] then begin
    Printf.printf "\nio latency:\n";
    Printf.printf "  %-22s %8s %9s %9s %9s %9s %10s\n" "op:device" "n" "p50 us" "p90 us"
      "p99 us" "max us" "total ms";
    List.iter
      (fun name ->
        let durs = Array.of_list !(Hashtbl.find trace.tr_io name) in
        Array.sort compare durs;
        let total = Array.fold_left ( + ) 0 durs in
        Printf.printf "  %-22s %8d %9.2f %9.2f %9.2f %9.2f %10.3f\n" name (Array.length durs)
          (us (percentile durs 0.50))
          (us (percentile durs 0.90))
          (us (percentile durs 0.99))
          (us (if Array.length durs = 0 then 0 else durs.(Array.length durs - 1)))
          (ms total))
      (List.rev !(trace.tr_io_order))
  end

let print_instants trace =
  let rows =
    List.concat_map
      (fun tp ->
        Hashtbl.fold (fun name c acc -> (tp.tp_name, name, !c) :: acc) tp.tp_instants [])
      trace.tr_tracks
    |> List.sort compare
  in
  if rows <> [] then begin
    Printf.printf "\ninstants:\n";
    List.iter (fun (track, name, n) -> Printf.printf "  %-28s %6d  (%s)\n" name n track) rows
  end

let print_counters trace =
  let rows =
    List.concat_map
      (fun tp ->
        Hashtbl.fold
          (fun name v acc ->
            if name = "trace.dropped" then acc else (tp.tp_name, name, v) :: acc)
          tp.tp_counters [])
      trace.tr_tracks
    |> List.sort compare
  in
  if rows <> [] then begin
    Printf.printf "\ncounters:\n";
    List.iter
      (fun (track, name, v) -> Printf.printf "  %-28s %12d  (%s)\n" name v track)
      rows
  end

let print_profile top trace =
  Printf.printf "trace: %s\n" trace.tr_path;
  Printf.printf "timeline: %.3f ms, %d events, %d tracks, %d dropped\n"
    (ms (trace.tr_max_ns - trace.tr_min_ns))
    trace.tr_events (List.length trace.tr_tracks) (dropped trace);
  Printf.printf "\ntop spans by self time:\n";
  Printf.printf "  %-10s %-10s %7s  %-24s %s\n" "self ms" "total ms" "count" "name" "track";
  let rows = top_spans trace in
  List.iteri
    (fun i (track, name, a) ->
      if i < top then
        Printf.printf "  %-10.3f %-10.3f %7d  %-24s %s\n" (ms a.a_self) (ms a.a_total) a.a_count
          name track)
    rows;
  print_workers trace;
  print_io trace;
  print_instants trace;
  print_counters trace

(* --- diff mode --- *)

(* span self/total summed across tracks, keyed by name *)
let merged_spans trace =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun tp ->
      List.iter
        (fun name ->
          let a = Hashtbl.find tp.tp_spans name in
          match Hashtbl.find_opt tbl name with
          | Some m ->
              m.a_count <- m.a_count + a.a_count;
              m.a_total <- m.a_total + a.a_total;
              m.a_self <- m.a_self + a.a_self
          | None ->
              Hashtbl.add tbl name { a_count = a.a_count; a_total = a.a_total; a_self = a.a_self };
              order := name :: !order)
        (List.rev !(tp.tp_order)))
    trace.tr_tracks;
  (tbl, List.rev !order)

let print_diff a b =
  Printf.printf "diff: %s (A) vs %s (B)\n" a.tr_path b.tr_path;
  let wa = a.tr_max_ns - a.tr_min_ns and wb = b.tr_max_ns - b.tr_min_ns in
  Printf.printf "timeline: A %.3f ms, B %.3f ms (%+.1f%%)\n" (ms wa) (ms wb)
    (if wa = 0 then 0. else 100. *. float_of_int (wb - wa) /. float_of_int wa);
  Printf.printf "events: A %d (%d tracks, %d dropped), B %d (%d tracks, %d dropped)\n" a.tr_events
    (List.length a.tr_tracks) (dropped a) b.tr_events (List.length b.tr_tracks) (dropped b);
  let ta, oa = merged_spans a in
  let tb, ob = merged_spans b in
  let names = oa @ List.filter (fun n -> not (Hashtbl.mem ta n)) ob in
  let zero () = { a_count = 0; a_total = 0; a_self = 0 } in
  let rows =
    List.map
      (fun n ->
        let ga = Option.value (Hashtbl.find_opt ta n) ~default:(zero ()) in
        let gb = Option.value (Hashtbl.find_opt tb n) ~default:(zero ()) in
        (n, ga, gb, gb.a_self - ga.a_self))
      names
    |> List.sort (fun (_, _, _, d1) (_, _, _, d2) -> compare (abs d2) (abs d1))
  in
  Printf.printf "\nspan self time (ms), sorted by |B-A|:\n";
  Printf.printf "  %-24s %10s %10s %10s %8s %8s\n" "name" "A self" "B self" "delta" "A n" "B n";
  List.iter
    (fun (n, ga, gb, d) ->
      Printf.printf "  %-24s %10.3f %10.3f %+10.3f %8d %8d\n" n (ms ga.a_self) (ms gb.a_self)
        (ms d) ga.a_count gb.a_count)
    rows;
  List.iter
    (fun (label, tr) ->
      let workers = sort_by_name (List.filter is_worker tr.tr_tracks) in
      if workers <> [] then begin
        Printf.printf "\n%s workers:\n" label;
        List.iter
          (fun tp ->
            let busy = span_total tp "task:sort" + span_total tp "task:copy" in
            let tasks = span_count tp "task:sort" + span_count tp "task:copy" in
            Printf.printf "  %-12s busy %10.3f ms, idle %10.3f ms, %d tasks\n" tp.tp_name
              (ms busy)
              (ms (span_total tp "worker.idle"))
              tasks)
          workers
      end)
    [ ("A", a); ("B", b) ]

(* --- CLI --- *)

let run check top diff path =
  try
    let wrap p f = try f () with Failure msg -> failwith (p ^ ": " ^ msg) in
    let trace = wrap path (fun () -> load path) in
    (match diff with
    | Some other ->
        let other_trace = wrap other (fun () -> load other) in
        print_diff trace other_trace
    | None ->
        if check then
          Printf.printf "trace ok: %d events, %d tracks, %d dropped\n" trace.tr_events
            (List.length trace.tr_tracks) (dropped trace)
        else print_profile top trace);
    `Ok ()
  with Failure msg | Sys_error msg -> `Error (false, msg)

let cmd =
  let doc = "analyse nexsort --trace timelines (self-profile, I/O latency, trace diffs)" in
  let info = Cmd.info "nextrace" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run
        $ Arg.(
            value & flag
            & info [ "check" ] ~doc:"Validate the trace and print a one-line summary only.")
        $ Arg.(
            value & opt int 12
            & info [ "top" ] ~docv:"N" ~doc:"Rows in the top-spans table (default 12).")
        $ Arg.(
            value
            & opt (some string) None
            & info [ "diff" ] ~docv:"OTHER"
                ~doc:"Compare the trace against $(docv) (A = positional trace, B = $(docv)).")
        $ Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE")))

let () = exit (Cmd.eval cmd)
