(* nexsort-gen: generate synthetic XML workloads (§5 of the paper). *)

open Cmdliner

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Run [gen] and write the result to [output].  With [--device] the
   generator streams onto a spec-built device (exercising its stack) and
   the file is written from the device's contents. *)
let emit device metrics output gen =
  let s, stats, dev_io =
    match device with
    | None ->
        let s, stats = Xmlgen.Gen.to_string gen in
        (s, stats, None)
    | Some spec ->
        let dev = Extmem.Device_spec.scratch spec ~name:"gen" ~block_size:4096 in
        let stats = Xmlgen.Gen.to_device dev gen in
        (Extmem.Device.contents dev, stats, Some (Extmem.Io_stats.snapshot (Extmem.Device.stats dev)))
  in
  write_file output s;
  Cli_common.write_metrics metrics
    (let rep = Obs.Report.create ~tool:"nexsort-gen" in
     Obs.Report.add rep "gen"
       (Obs.Json.Obj
          [ ("elements", Obs.Json.Int stats.Xmlgen.Gen.elements);
            ("height", Obs.Json.Int stats.Xmlgen.Gen.height);
            ("bytes", Obs.Json.Int stats.Xmlgen.Gen.bytes) ]);
     (match dev_io with
     | Some io -> Obs.Report.add rep "io" (Obs.Json.Obj [ ("device", Obs.Json.io_stats io) ])
     | None -> ());
     rep);
  Printf.eprintf "wrote %s: %d elements, height %d, %d bytes\n" output
    stats.Xmlgen.Gen.elements stats.Xmlgen.Gen.height stats.Xmlgen.Gen.bytes;
  `Ok ()

let run seed avg_bytes height max_fanout max_elements fanouts company device metrics output =
  match (company, fanouts) with
  | true, _ when device <> None ->
      `Error (false, "--device is not supported with --company")
  | true, _ ->
      let pair = Xmlgen.Company.generate ~seed () in
      write_file (output ^ ".personnel.xml") pair.Xmlgen.Company.personnel;
      write_file (output ^ ".payroll.xml") pair.Xmlgen.Company.payroll;
      Cli_common.write_metrics metrics
        (let rep = Obs.Report.create ~tool:"nexsort-gen" in
         Obs.Report.add rep "company"
           (Obs.Json.Obj
              [ ("personnel_bytes", Obs.Json.Int (String.length pair.Xmlgen.Company.personnel));
                ("payroll_bytes", Obs.Json.Int (String.length pair.Xmlgen.Company.payroll)) ]);
         rep);
      Printf.eprintf "wrote %s.personnel.xml and %s.payroll.xml\n" output output;
      `Ok ()
  | false, Some fanouts ->
      emit device metrics output (fun sink -> Xmlgen.Gen.exact_shape ~seed ~avg_bytes ~fanouts sink)
  | false, None ->
      emit device metrics output (fun sink ->
          Xmlgen.Gen.random_shape ~seed ~avg_bytes ~max_elements ~height ~max_fanout sink)

let fanouts_term =
  let parse s =
    try Ok (Some (List.map int_of_string (String.split_on_char ',' s)))
    with Failure _ -> Error (`Msg "expected a comma-separated list of integers")
  in
  Arg.(
    value
    & opt (conv (parse, fun ppf _ -> Format.pp_print_string ppf "<fanouts>")) None
    & info [ "fanouts" ] ~docv:"F1,F2,..."
        ~doc:
          "Exact per-level fan-outs (the paper's custom generator, Table 2).  Overrides \
           $(b,--height)/$(b,--max-fanout).")

let cmd =
  let doc = "generate synthetic XML documents (IBM-generator-style and exact-shape)" in
  let info = Cmd.info "nexsort-gen" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run
        $ Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")
        $ Arg.(
            value & opt int 150
            & info [ "avg-bytes" ] ~docv:"N" ~doc:"Average serialized element size (paper: 150).")
        $ Arg.(value & opt int 4 & info [ "height" ] ~docv:"H" ~doc:"Tree height (random shape).")
        $ Arg.(
            value & opt int 10
            & info [ "max-fanout"; "k" ] ~docv:"K"
                ~doc:"Maximum fan-out; per-element fan-out is uniform in [1, K].")
        $ Arg.(
            value & opt int 100_000
            & info [ "max-elements" ] ~docv:"N" ~doc:"Stop growing the tree at N elements.")
        $ fanouts_term
        $ Arg.(
            value & flag
            & info [ "company" ]
                ~doc:"Generate the Figure 1 personnel/payroll document pair instead.")
        $ Cli_common.device_term
        $ Cli_common.metrics_term
        $ Arg.(
            value & opt string "generated.xml" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")))

let () = exit (Cmd.eval cmd)
