(* Shared cmdliner terms for the NEXSORT command-line tools. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let ordering_term =
  let doc =
    "Ordering specification: comma-separated $(b,tag=criterion) rules plus an optional default \
     criterion, where a criterion is $(b,tag), $(b,doc), $(b,text), $(b,@attr) or a \
     $(b,a/b/c) descendant path.  Example: \
     $(b,@id,region=@name,employee=personalInfo/name)."
  in
  let parse s =
    match Nexsort.Ordering.of_spec_string s with
    | o -> Ok o
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  let pp ppf _ = Format.pp_print_string ppf "<ordering>" in
  Arg.(
    value
    & opt (conv (parse, pp)) (Nexsort.Ordering.by_attr "id")
    & info [ "ordering"; "O" ] ~docv:"SPEC" ~doc)

let encoding_term =
  let encodings =
    [ ("plain", Nexsort.Config.Plain); ("dict", Nexsort.Config.Dict);
      ("packed", Nexsort.Config.Packed) ]
  in
  Arg.(
    value
    & opt (Arg.enum encodings) Nexsort.Config.Dict
    & info [ "encoding" ] ~docv:"ENC"
        ~doc:"Entry encoding: $(b,plain), $(b,dict) (name compression) or $(b,packed) (dict + \
              end-tag elimination; scan-evaluable orderings only).")

let policy_term =
  let policies =
    List.map
      (fun p -> (Extmem.Frame_arena.policy_to_string p, p))
      Extmem.Frame_arena.all_policies
  in
  Arg.(
    value
    & opt (Arg.enum policies) Extmem.Frame_arena.Lru
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Frame replacement policy for paged components: $(b,lru), $(b,clock), $(b,mru) or \
           $(b,stack) (the paper's no-prefetch stack pager).  Sorted output is identical under \
           every policy; only paging counters move.")

let no_fuse_term =
  Arg.(
    value & flag
    & info [ "no-fuse" ]
        ~doc:
          "Disable pipeline fusion across phase boundaries: materialise the root's sorted run \
           (and, for merges, each sorted document) instead of streaming it straight into the \
           next phase.")

let config_term =
  let block_size =
    Arg.(
      value & opt int 4096
      & info [ "block-size"; "B" ] ~docv:"BYTES" ~doc:"Block size in bytes (the model's B).")
  in
  let memory_blocks =
    Arg.(
      value & opt int 64
      & info [ "memory"; "M" ] ~docv:"BLOCKS"
          ~doc:"Internal memory budget in blocks (the model's M/B).")
  in
  let threshold =
    Arg.(
      value & opt (some int) None
      & info [ "threshold"; "t" ] ~docv:"BYTES"
          ~doc:"Sort threshold t in bytes (default: twice the block size).")
  in
  let depth_limit =
    Arg.(
      value & opt (some int) None
      & info [ "depth-limit"; "d" ] ~docv:"LEVEL"
          ~doc:"Sort only down to this level (root = 1); deeper subtrees keep document order.")
  in
  let no_degeneration =
    Arg.(
      value & flag
      & info [ "no-degeneration" ]
          ~doc:"Disable graceful degeneration into external merge sort on flat inputs.")
  in
  let keep_whitespace =
    Arg.(value & flag & info [ "keep-whitespace" ] ~doc:"Preserve whitespace-only text nodes.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for parallel subtree sorting (1-64).  Output and I/O counters are \
             identical for every value; 1 (the default) runs fully single-threaded.")
  in
  let build block_size memory_blocks threshold depth_limit no_degeneration keep_whitespace no_fuse
      encoding pager_policy jobs =
    (* Config.make rejects inconsistent sizes; surface that as a clean
       one-line CLI error instead of an uncaught exception *)
    match
      Nexsort.Config.make ~block_size ~memory_blocks ?threshold ?depth_limit
        ~degeneration:(not no_degeneration) ~root_fusion:(not no_fuse) ~encoding ~keep_whitespace
        ~pager_policy ~jobs ()
    with
    | config -> Ok config
    | exception Invalid_argument msg -> Error msg
  in
  Term.term_result'
    Term.(
      const build $ block_size $ memory_blocks $ threshold $ depth_limit $ no_degeneration
      $ keep_whitespace $ no_fuse_term $ encoding_term $ policy_term $ jobs)

let device_term =
  let parse s =
    match Extmem.Device_spec.parse s with
    | spec -> Ok spec
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  let pp ppf s = Format.pp_print_string ppf (Extmem.Device_spec.to_string s) in
  Arg.(
    value
    & opt (some (conv (parse, pp))) None
    & info [ "device" ] ~docv:"SPEC"
        ~doc:
          "Device stack specification: zero or more middleware layers, then a backend — e.g. \
           $(b,mem), $(b,file:PATH), $(b,traced/mem), $(b,faulty:p=0.001,seed=42/file:PATH), \
           $(b,cost:profile=hdd/mem).  Layers compose; $(b,traced) records the access pattern, \
           $(b,faulty) injects seeded random faults, $(b,cost) charges simulated \
           seek/transfer time (reported with $(b,--stats)).")

let pp_io name (s : Extmem.Io_stats.t) =
  Printf.eprintf "  %-24s %8d reads %8d writes\n" name s.Extmem.Io_stats.reads
    s.Extmem.Io_stats.writes

let pp_pager name ~hits ~misses ~evictions ~writebacks =
  Printf.eprintf "  %-24s %8d hits  %8d misses  %8d evictions  %8d writebacks\n" name hits misses
    evictions writebacks

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable JSON run report to $(docv) ($(b,-) for stdout; a \
           $(b,.ndjson) path selects newline-delimited JSON, one section per line).")

let write_metrics metrics report =
  Option.iter (fun path -> Obs.Report.write_file report path) metrics

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event timeline of the run to $(docv) (open in Perfetto or \
           chrome://tracing; analyse offline with $(b,nextrace)).  Spans, per-worker tracks, \
           arena evictions and per-I/O latencies are recorded into bounded per-domain ring \
           buffers; overflow drops events (counted) rather than blocking.")

(* Fail before doing any work if the trace path cannot be written, so a
   bad --trace dies with a one-line error instead of a completed sort
   followed by a crash at flush time. *)
let prepare_trace = function
  | None -> Ok Obs.Tracer.null
  | Some path -> (
      match open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path with
      | oc ->
          close_out oc;
          Ok (Obs.Tracer.create ())
      | exception Sys_error msg -> Error msg)

let write_trace trace tracer =
  Option.iter (fun path -> Obs.Tracer.write_file tracer path) trace
