(* nexsortd: a long-lived multi-tenant sort daemon over one Engine.

   Requests are newline-delimited commands — read from a job file, stdin
   or a Unix socket — whose arguments reuse the nexsort CLI surface
   (Cmdliner terms, Device_spec strings, ordering specs):

     sort   [FLAGS] INPUT -o OUTPUT [--tenant T] [--metrics FILE]
     merge  [FLAGS] LEFT RIGHT -o OUTPUT [--tenant T] [--metrics FILE]
     update [FLAGS] BASE UPDATE... -o OUTPUT [--flush-every N]
     status
     cancel ID
     wait
     quit

   sort/merge submit a job and return immediately ("[ID] queued ...");
   the job runs on its own domain through the engine's admission queue,
   so a budget too small for the submitted set exercises queuing, not
   failure.  "wait" (and end of input) joins every job and reports each
   outcome in submission order — the deterministic sequence point the
   cram tests and check.sh gate on.  Malformed requests and cancels of
   unknown jobs are one-line errors with exit 124 (the CLI convention);
   end of input with jobs still queued is a clean shutdown: everything
   completes, then the summary and exit 0/1.

   The scheduler is the point, not the wire format: the socket mode
   serves the same line protocol to one client at a time. *)

open Cmdliner

type sort_req = {
  sr_config : Nexsort.Config.t;
  sr_ordering : Nexsort.Ordering.t;
  sr_device : Extmem.Device_spec.t option;
  sr_metrics : string option;
  sr_tenant : string;
  sr_input : string;
  sr_output : string;
}

type merge_req = {
  mr_config : Nexsort.Config.t;
  mr_ordering : Nexsort.Ordering.t;
  mr_device : Extmem.Device_spec.t option;
  mr_metrics : string option;
  mr_no_fuse : bool;
  mr_tenant : string;
  mr_left : string;
  mr_right : string;
  mr_output : string;
}

type update_req = {
  ur_config : Nexsort.Config.t;
  ur_ordering : Nexsort.Ordering.t;
  ur_device : Extmem.Device_spec.t option;
  ur_metrics : string option;
  ur_tenant : string;
  ur_flush_every : int;
  ur_base : string;
  ur_updates : string list;
  ur_output : string;
}

type request =
  | Sort of sort_req
  | Merge of merge_req
  | Update of update_req

type outcome =
  | Done of string
  | Cancelled
  | Failed of string

type entry = {
  e_id : int;
  e_label : string;
  e_cancel : bool Atomic.t;
  e_domain : outcome Domain.t;
  mutable e_outcome : outcome option;  (* filled at join *)
  mutable e_reported : bool;
}

let tenant_term =
  Arg.(
    value & opt string "default"
    & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant the job is admitted and accounted under.")

let output_term =
  Arg.(value & opt string "sorted.xml" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")

let sort_cmd =
  let build config ordering device metrics tenant input output =
    `Ok
      (Sort
         {
           sr_config = config;
           sr_ordering = ordering;
           sr_device = device;
           sr_metrics = metrics;
           sr_tenant = tenant;
           sr_input = input;
           sr_output = output;
         })
  in
  Cmd.v (Cmd.info "sort")
    Term.(
      ret
        (const build $ Cli_common.config_term $ Cli_common.ordering_term
       $ Cli_common.device_term $ Cli_common.metrics_term $ tenant_term
       $ Arg.(required & pos 0 (some string) None & info [] ~docv:"INPUT")
       $ output_term))

let merge_cmd =
  let build config ordering device metrics no_fuse tenant left right output =
    `Ok
      (Merge
         {
           mr_config = config;
           mr_ordering = ordering;
           mr_device = device;
           mr_metrics = metrics;
           mr_no_fuse = no_fuse;
           mr_tenant = tenant;
           mr_left = left;
           mr_right = right;
           mr_output = output;
         })
  in
  Cmd.v (Cmd.info "merge")
    Term.(
      ret
        (const build $ Cli_common.config_term $ Cli_common.ordering_term
       $ Cli_common.device_term $ Cli_common.metrics_term $ Cli_common.no_fuse_term
       $ tenant_term
       $ Arg.(required & pos 0 (some string) None & info [] ~docv:"LEFT")
       $ Arg.(required & pos 1 (some string) None & info [] ~docv:"RIGHT")
       $ output_term))

let update_cmd =
  let build config ordering device metrics tenant flush_every base updates output =
    if flush_every < 1 then `Error (false, "--flush-every must be >= 1")
    else if updates = [] then `Error (false, "update: expected at least one UPDATE document")
    else
      `Ok
        (Update
           {
             ur_config = config;
             ur_ordering = ordering;
             ur_device = device;
             ur_metrics = metrics;
             ur_tenant = tenant;
             ur_flush_every = flush_every;
             ur_base = base;
             ur_updates = updates;
             ur_output = output;
           })
  in
  let flush_every_term =
    Arg.(
      value & opt int 1
      & info [ "flush-every" ] ~docv:"N" ~doc:"Flush the update queue after every N documents.")
  in
  Cmd.v (Cmd.info "update")
    Term.(
      ret
        (const build $ Cli_common.config_term $ Cli_common.ordering_term
       $ Cli_common.device_term $ Cli_common.metrics_term $ tenant_term $ flush_every_term
       $ Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE")
       $ Arg.(value & pos_right 0 string [] & info [] ~docv:"UPDATE")
       $ output_term))

(* Parse one request's arguments through its Cmdliner command, capturing
   the error report so a bad request is a single line, not a usage
   dump. *)
let eval_request cmd args =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let result =
    Cmd.eval_value ~err:fmt ~help:fmt ~argv:(Array.of_list (Cmd.name cmd :: args)) cmd
  in
  Format.pp_print_flush fmt ();
  match result with
  | Ok (`Ok v) -> Ok v
  | Ok (`Help | `Version) -> Error "help/version are not request commands"
  | Error _ ->
      let msg = String.trim (Buffer.contents buf) in
      let msg =
        match String.index_opt msg '\n' with
        | Some i -> String.sub msg 0 i
        | None -> msg
      in
      Error (if msg = "" then "bad request" else msg)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

(* --- job bodies (run on their own domain) ------------------------- *)

let scratch spec ~name ~block_size s =
  let d = Extmem.Device_spec.scratch spec ~name ~block_size in
  Option.iter (Extmem.Device.load_string d) s;
  d

let run_sort engine cancel (r : sort_req) =
  let spec = Option.value r.sr_device ~default:Extmem.Device_spec.default in
  let config = { r.sr_config with Nexsort.Config.device = spec } in
  let block_size = config.Nexsort.Config.block_size in
  let xml = Cli_common.read_file r.sr_input in
  let input = scratch spec ~name:"input" ~block_size (Some xml) in
  let output = scratch spec ~name:"output" ~block_size None in
  let report, job =
    Engine.run ~cancel engine ~tenant:r.sr_tenant config (fun job session ->
        (Nexsort.sort_device ~session ~ordering:r.sr_ordering ~input ~output (), job))
  in
  Cli_common.write_file r.sr_output (Extmem.Device.contents output);
  Cli_common.write_metrics r.sr_metrics
    (let rep = Nexsort.metrics_report ~config report in
     Obs.Report.add rep "job" (Engine.job_json engine job);
     rep);
  Printf.sprintf "sort %s -> %s (%d events, %d subtree sorts)" r.sr_input r.sr_output
    report.Nexsort.events report.Nexsort.subtree_sorts

(* A fused merge holds two sessions, i.e. two engine slots.  The
   admission lock serializes the two-slot acquisition so concurrent
   merges cannot deadlock holding one slot each; single-slot sorts
   queue through the normal path meanwhile. *)
let run_merge engine merge_lock cancel (r : merge_req) =
  let spec = Option.value r.mr_device ~default:Extmem.Device_spec.default in
  let config = { r.mr_config with Nexsort.Config.device = spec } in
  let block_size = config.Nexsort.Config.block_size in
  let ldev = scratch spec ~name:"left" ~block_size (Some (Cli_common.read_file r.mr_left)) in
  let rdev = scratch spec ~name:"right" ~block_size (Some (Cli_common.read_file r.mr_right)) in
  let odev = scratch spec ~name:"output" ~block_size None in
  Mutex.lock merge_lock;
  let jl, jr =
    match
      let jl = Engine.acquire ~name:"merge-left" ~cancel engine ~tenant:r.mr_tenant config in
      let jr =
        try Engine.acquire ~name:"merge-right" ~cancel engine ~tenant:r.mr_tenant config
        with e ->
          Engine.release engine jl;
          raise e
      in
      (jl, jr)
    with
    | pair ->
        Mutex.unlock merge_lock;
        pair
    | exception e ->
        Mutex.unlock merge_lock;
        raise e
  in
  let report, job_section =
    Fun.protect
      ~finally:(fun () ->
        Engine.release engine jl;
        Engine.release engine jr)
      (fun () ->
        let sl = Engine.session engine jl in
        let sr =
          try Engine.session engine jr
          with e ->
            Nexsort.Session.destroy sl;
            raise e
        in
        let report =
          Xmerge.Struct_merge.sort_and_merge_devices ~config ~fuse:(not r.mr_no_fuse)
            ~sessions:(sl, sr) ~ordering:r.mr_ordering ~left:ldev ~right:rdev ~output:odev ()
        in
        (report, Engine.job_json engine jl))
  in
  Cli_common.write_file r.mr_output (Extmem.Device.contents odev);
  Cli_common.write_metrics r.mr_metrics
    (let rep = Obs.Report.create ~tool:"nexsortd-merge" in
     Obs.Report.add rep "counts"
       (Obs.Json.Obj
          [
            ("output_events", Obs.Json.Int report.Xmerge.Struct_merge.output_events);
            ("matched_elements", Obs.Json.Int report.Xmerge.Struct_merge.matched_elements);
          ]);
     Obs.Report.add rep "io"
       (Obs.Json.Obj
          [
            ("left", Obs.Json.io_stats (Extmem.Io_stats.snapshot (Extmem.Device.stats ldev)));
            ("right", Obs.Json.io_stats (Extmem.Io_stats.snapshot (Extmem.Device.stats rdev)));
            ("output", Obs.Json.io_stats (Extmem.Io_stats.snapshot (Extmem.Device.stats odev)));
          ]);
     Obs.Report.add rep "job" job_section;
     rep);
  Printf.sprintf "merge %s + %s -> %s (%d matched)" r.mr_left r.mr_right r.mr_output
    report.Xmerge.Struct_merge.matched_elements

(* Incremental maintenance: the initial base sort runs on the job's
   engine session; the ingest (queue + flush merges) then runs inside
   the same admission slot, so a long update stream is accounted like
   any other running job.  Cancellation is observed between update
   documents. *)
let run_update engine cancel (r : update_req) =
  let spec = Option.value r.ur_device ~default:Extmem.Device_spec.default in
  let config = { r.ur_config with Nexsort.Config.device = spec } in
  let base = Cli_common.read_file r.ur_base in
  let (flushes, final_bytes), job =
    Engine.run ~cancel engine ~tenant:r.ur_tenant config (fun job session ->
        let t = Xmerge.Ingest.create ~config ~session ~ordering:r.ur_ordering ~base () in
        Fun.protect
          ~finally:(fun () -> Xmerge.Ingest.destroy t)
          (fun () ->
            let flushes = ref [] in
            let flush () = flushes := Xmerge.Ingest.flush t :: !flushes in
            List.iteri
              (fun i path ->
                if Atomic.get cancel then raise Engine.Cancelled;
                Xmerge.Ingest.add_update t (Cli_common.read_file path);
                if (i + 1) mod r.ur_flush_every = 0 then flush ())
              r.ur_updates;
            if Xmerge.Ingest.pending t > 0 || !flushes = [] then flush ();
            Cli_common.write_file r.ur_output (Xmerge.Ingest.contents t);
            ((List.rev !flushes, Extmem.Device.byte_length (Xmerge.Ingest.base_device t)), job)))
  in
  Cli_common.write_metrics r.ur_metrics
    (let rep = Obs.Report.create ~tool:"nexsortd-update" in
     let total f = List.fold_left (fun acc fr -> acc + f fr) 0 flushes in
     Obs.Report.add rep "counts"
       (Obs.Json.Obj
          [
            ("update_docs", Obs.Json.Int (List.length r.ur_updates));
            ("flushes", Obs.Json.Int (List.length flushes));
            ("batch_ops", Obs.Json.Int (total (fun fr -> fr.Xmerge.Ingest.batch_ops)));
            ("index_dropped", Obs.Json.Int (total (fun fr -> fr.Xmerge.Ingest.index_dropped)));
            ("base_bytes", Obs.Json.Int final_bytes);
          ]);
     Obs.Report.add rep "ingest"
       (Obs.Json.List (List.map Xmerge.Ingest.flush_report_json flushes));
     Obs.Report.add rep "job" (Engine.job_json engine job);
     rep);
  Printf.sprintf "update %s (%d docs, %d flushes) -> %s" r.ur_base (List.length r.ur_updates)
    (List.length flushes) r.ur_output

let job_body engine merge_lock cancel request () =
  match
    match request with
    | Sort r -> run_sort engine cancel r
    | Merge r -> run_merge engine merge_lock cancel r
    | Update r -> run_update engine cancel r
  with
  | summary -> Done summary
  | exception Engine.Cancelled -> Cancelled
  | exception Xmlio.Parser.Error { line; col; msg } ->
      Failed (Printf.sprintf "%d:%d: %s" line col msg)
  | exception Xmlio.Tree.Malformed msg -> Failed ("malformed document: " ^ msg)
  | exception Extmem.Memory_budget.Exhausted msg -> Failed ("memory budget exhausted: " ^ msg)
  | exception Extmem.Device.Fault (op, block) ->
      Failed
        (Printf.sprintf "injected device fault: %s of block %d"
           (match op with Extmem.Device.Read -> "read" | Extmem.Device.Write -> "write")
           block)
  | exception Sys_error msg -> Failed msg
  | exception Invalid_argument msg -> Failed msg
  | exception Xmerge.Struct_merge.Not_sorted msg -> Failed ("input not sorted: " ^ msg)

(* --- daemon state and line protocol -------------------------------- *)

type daemon = {
  engine : Engine.t;
  merge_lock : Mutex.t;
  mutable jobs : entry list;  (* newest first *)
  mutable next_id : int;
}

let find_job d id = List.find_opt (fun e -> e.e_id = id) d.jobs

let join_entry e =
  match e.e_outcome with
  | Some o -> o
  | None ->
      let o = Domain.join e.e_domain in
      e.e_outcome <- Some o;
      o

let report_entry out e =
  let outcome = join_entry e in
  if not e.e_reported then begin
    e.e_reported <- true;
    match outcome with
    | Done summary -> Printf.fprintf out "[%d] done %s\n" e.e_id summary
    | Cancelled -> Printf.fprintf out "[%d] cancelled %s\n" e.e_id e.e_label
    | Failed msg -> Printf.fprintf out "[%d] failed %s: %s\n" e.e_id e.e_label msg
  end

(* Join every job in submission order and report each outcome (once) —
   the deterministic sequence point of the protocol. *)
let wait_all out d =
  List.iter (report_entry out) (List.rev d.jobs);
  flush out

let counter_value d name =
  match List.assoc_opt name (Obs.Registry.snapshot (Engine.registry d.engine)) with
  | Some v -> int_of_float v
  | None -> 0

let summarize out d =
  let count p = List.length (List.filter p d.jobs) in
  let finished = count (fun e -> match e.e_outcome with Some (Done _) -> true | _ -> false) in
  let cancelled = count (fun e -> e.e_outcome = Some Cancelled) in
  let failed = count (fun e -> match e.e_outcome with Some (Failed _) -> true | _ -> false) in
  Printf.fprintf out "%d jobs: %d done, %d cancelled, %d failed; leaked blocks: %d\n"
    (List.length d.jobs) finished cancelled failed
    (Engine.leaked_blocks d.engine);
  flush out;
  if failed > 0 then 1 else 0

let submit out d request =
  let id = d.next_id in
  d.next_id <- id + 1;
  let cancel = Atomic.make false in
  let label, tenant =
    match request with
    | Sort r -> (Printf.sprintf "sort %s" r.sr_input, r.sr_tenant)
    | Merge r -> (Printf.sprintf "merge %s + %s" r.mr_left r.mr_right, r.mr_tenant)
    | Update r ->
        (Printf.sprintf "update %s (%d docs)" r.ur_base (List.length r.ur_updates), r.ur_tenant)
  in
  let body = job_body d.engine d.merge_lock cancel request in
  let e =
    { e_id = id; e_label = label; e_cancel = cancel; e_domain = Domain.spawn body;
      e_outcome = None; e_reported = false }
  in
  d.jobs <- e :: d.jobs;
  Printf.fprintf out "[%d] queued %s tenant=%s\n" id label tenant;
  flush out

(* One request line.  [`Continue] keeps reading; [`Quit code] drains and
   exits. *)
let process_line out d line =
  match tokens line with
  | [] -> `Continue
  | cmd :: _ when String.length cmd > 0 && cmd.[0] = '#' -> `Continue
  | "sort" :: args -> (
      match eval_request sort_cmd args with
      | Ok req ->
          submit out d req;
          `Continue
      | Error msg ->
          Printf.eprintf "nexsortd: %s\n%!" msg;
          `Quit 124)
  | "merge" :: args -> (
      match eval_request merge_cmd args with
      | Ok req ->
          submit out d req;
          `Continue
      | Error msg ->
          Printf.eprintf "nexsortd: %s\n%!" msg;
          `Quit 124)
  | "update" :: args -> (
      match eval_request update_cmd args with
      | Ok req ->
          submit out d req;
          `Continue
      | Error msg ->
          Printf.eprintf "nexsortd: %s\n%!" msg;
          `Quit 124)
  | [ "cancel"; id ] -> (
      match Option.bind (int_of_string_opt id) (find_job d) with
      | Some e ->
          Engine.cancel d.engine e.e_cancel;
          Printf.fprintf out "[%d] cancel requested\n" e.e_id;
          flush out;
          `Continue
      | None ->
          Printf.eprintf "nexsortd: cancel: unknown job %s\n%!" id;
          `Quit 124)
  | [ "status" ] ->
      Printf.fprintf out "engine: %d running, %d waiting, %d admitted, %d completed; leaked blocks: %d\n"
        (counter_value d "engine.running_jobs")
        (counter_value d "engine.waiting_jobs")
        (counter_value d "engine.jobs_admitted")
        (counter_value d "engine.jobs_completed")
        (Engine.leaked_blocks d.engine);
      flush out;
      `Continue
  | [ "wait" ] ->
      wait_all out d;
      `Continue
  | [ "quit" ] -> `Quit (-1)  (* clean drain, exit by summary *)
  | cmd :: _ ->
      Printf.eprintf "nexsortd: unknown request %S\n%!" cmd;
      `Quit 124

(* Drain the daemon: cancel nothing, let queued jobs complete, report
   them, summarize.  [forced] (bad request) cancels whatever is still
   outstanding first so the process can exit promptly with 124. *)
let shutdown ?(forced = false) out d code =
  if forced then
    List.iter
      (fun e -> if e.e_outcome = None then Engine.cancel d.engine e.e_cancel)
      d.jobs;
  wait_all out d;
  let summary_code = summarize out d in
  Engine.destroy d.engine;
  if code >= 0 then code else summary_code

let serve_channel out d ic =
  let rec loop () =
    match input_line ic with
    | line -> (
        match process_line out d line with
        | `Continue -> loop ()
        | `Quit code -> shutdown ~forced:(code >= 0) out d code)
    | exception End_of_file -> shutdown out d (-1)
  in
  loop ()

let serve_socket path d =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  Printf.eprintf "nexsortd: listening on %s\n%!" path;
  let rec accept_loop () =
    let conn, _ = Unix.accept sock in
    let ic = Unix.in_channel_of_descr conn in
    let out = Unix.out_channel_of_descr conn in
    let rec conn_loop () =
      match input_line ic with
      | line -> (
          match process_line out d line with
          | `Continue -> conn_loop ()
          | `Quit code ->
              let code = shutdown ~forced:(code >= 0) out d code in
              (try flush out with Sys_error _ -> ());
              (try Unix.close conn with Unix.Unix_error _ -> ());
              (try Unix.unlink path with Unix.Unix_error _ -> ());
              Some code)
      | exception End_of_file ->
          (try flush out with Sys_error _ -> ());
          (try Unix.close conn with Unix.Unix_error _ -> ());
          None
    in
    match conn_loop () with Some code -> code | None -> accept_loop ()
  in
  accept_loop ()

let run memory block_size workers socket jobfile =
  let engine = Engine.create ~workers ~memory_blocks:memory ~block_size () in
  let d = { engine; merge_lock = Mutex.create (); jobs = []; next_id = 1 } in
  let code =
    match (socket, jobfile) with
    | Some path, _ -> serve_socket path d
    | None, Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> serve_channel stdout d ic)
    | None, None -> serve_channel stdout d stdin
  in
  exit code

let cmd =
  let doc = "multi-tenant NEXSORT daemon: concurrent sort/merge jobs over one engine" in
  let memory_term =
    Arg.(
      value & opt int 256
      & info [ "memory"; "M" ] ~docv:"BLOCKS"
          ~doc:
            "Engine memory budget in blocks — the pool every job's budget is carved from. \
             Size it below the sum of the submitted jobs' needs to exercise admission \
             queuing.")
  in
  let block_size_term =
    Arg.(
      value & opt int 4096
      & info [ "block-size"; "B" ] ~docv:"BYTES" ~doc:"Engine budget block size.")
  in
  let workers_term =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains in the shared sort pool (0: no shared pool; jobs with \
             $(b,--jobs) > 1 then spawn private pools).")
  in
  let socket_term =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Serve the request protocol on a Unix domain socket instead of stdin.")
  in
  let jobfile_term =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"JOBFILE" ~doc:"Request file.")
  in
  Cmd.v
    (Cmd.info "nexsortd" ~version:"1.0.0" ~doc)
    Term.(const run $ memory_term $ block_size_term $ workers_term $ socket_term $ jobfile_term)

let () = exit (Cmd.eval cmd)
