(* nexsort-merge: sort two XML documents and structurally merge them in a
   single pass (Example 1.1), or apply a batch-update document. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let ordering_term =
  let parse s =
    match Nexsort.Ordering.of_spec_string s with
    | o -> Ok o
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.(
    value
    & opt (conv (parse, fun ppf _ -> Format.pp_print_string ppf "<ordering>"))
        (Nexsort.Ordering.by_attr "id")
    & info [ "ordering"; "O" ] ~docv:"SPEC"
        ~doc:"Ordering specification (see $(b,nexsort --help)); must be scan-evaluable.")

let struct_merge_report ~tool (r : Xmerge.Struct_merge.report) =
  let rep = Obs.Report.create ~tool in
  Obs.Report.add rep "counts"
    (Obs.Json.Obj
       [ ("left_events", Obs.Json.Int r.Xmerge.Struct_merge.left_events);
         ("right_events", Obs.Json.Int r.Xmerge.Struct_merge.right_events);
         ("output_events", Obs.Json.Int r.Xmerge.Struct_merge.output_events);
         ("matched_elements", Obs.Json.Int r.Xmerge.Struct_merge.matched_elements) ]);
  Obs.Report.add rep "phases" (Obs.Span.to_json r.Xmerge.Struct_merge.spans);
  rep

(* The fused sort+merge holds both its sort sessions at once, so it runs
   over a two-slot engine: two jobs admitted up front, each session
   carved from the shared engine budget.  [f] must consume both sessions
   (the merge destroys them on every exit path); release is idempotent
   leak accounting either way. *)
let with_merge_sessions ~(config : Nexsort.Config.t) f =
  let eng = Engine.for_config ~tracer:config.Nexsort.Config.tracer ~slots:2 config in
  Fun.protect
    ~finally:(fun () -> Engine.destroy eng)
    (fun () ->
      let jl = Engine.acquire ~name:"merge-left" eng ~tenant:"merge" config in
      let jr =
        try Engine.acquire ~name:"merge-right" eng ~tenant:"merge" config
        with e ->
          Engine.release eng jl;
          raise e
      in
      Fun.protect
        ~finally:(fun () ->
          Engine.release eng jl;
          Engine.release eng jr)
        (fun () ->
          let sl = Engine.session eng jl in
          let sr =
            try Engine.session eng jr
            with e ->
              Nexsort.Session.destroy sl;
              raise e
          in
          f (sl, sr)))

(* --ingest: keep the sorted base live under a stream of update
   documents through Xmerge.Ingest, flushing every [flush_every] docs
   (and once at the end).  Each flush gets its own entry in the metrics'
   "ingest" section: batch sizes, queue counters, merge I/O. *)
let run_ingest ~ordering ~config ~metrics ~finish base rights flush_every output =
  let t = Xmerge.Ingest.create ~config ~ordering ~base () in
  Fun.protect
    ~finally:(fun () -> Xmerge.Ingest.destroy t)
    (fun () ->
      let flushes = ref [] in
      let flush () =
        let r = Xmerge.Ingest.flush t in
        flushes := r :: !flushes;
        Printf.eprintf
          "flush %d: %d ops from %d docs%s, %d index-dropped, io r=%d w=%d, base %dB\n"
          (List.length !flushes) r.Xmerge.Ingest.batch_ops r.Xmerge.Ingest.batch_docs
          (if r.Xmerge.Ingest.skipped then " (skipped)" else "")
          r.Xmerge.Ingest.index_dropped r.Xmerge.Ingest.flush_io.Extmem.Io_stats.reads
          r.Xmerge.Ingest.flush_io.Extmem.Io_stats.writes r.Xmerge.Ingest.base_bytes
      in
      List.iteri
        (fun i path ->
          Xmerge.Ingest.add_update t (read_file path);
          if (i + 1) mod flush_every = 0 then flush ())
        rights;
      if Xmerge.Ingest.pending t > 0 || !flushes = [] then flush ();
      write_file output (Xmerge.Ingest.contents t);
      let flushes = List.rev !flushes in
      let total f = List.fold_left (fun acc r -> acc + f r) 0 flushes in
      let rep = Obs.Report.create ~tool:"nexsort-merge-ingest" in
      Obs.Report.add rep "counts"
        (Obs.Json.Obj
           [ ("update_docs", Obs.Json.Int (List.length rights));
             ("flushes", Obs.Json.Int (List.length flushes));
             ("batch_ops", Obs.Json.Int (total (fun r -> r.Xmerge.Ingest.batch_ops)));
             ("index_dropped", Obs.Json.Int (total (fun r -> r.Xmerge.Ingest.index_dropped)));
             ("indexed_keys", Obs.Json.Int (Xmerge.Ingest.index_keys t)) ]);
      Obs.Report.add rep "ingest"
        (Obs.Json.List (List.map Xmerge.Ingest.flush_report_json flushes));
      Obs.Report.add rep "io"
        (Obs.Json.Obj
           [ ( "flush_reads",
               Obs.Json.Int (total (fun r -> r.Xmerge.Ingest.flush_io.Extmem.Io_stats.reads)) );
             ( "flush_writes",
               Obs.Json.Int (total (fun r -> r.Xmerge.Ingest.flush_io.Extmem.Io_stats.writes)) ) ]);
      Cli_common.write_metrics metrics rep;
      Printf.eprintf "ingested %d update docs in %d flushes -> %s\n" (List.length rights)
        (List.length flushes) output;
      finish (`Ok ()))

let run ordering presorted update_mode ingest_mode flush_every indexed policy device no_fuse
    metrics trace left_path right_paths output =
  match Cli_common.prepare_trace trace with
  | Error msg -> `Error (false, msg)
  | Ok tracer ->
  let finish ok =
    Cli_common.write_trace trace tracer;
    ok
  in
  try
    let left = read_file left_path in
    let right = match right_paths with r :: _ -> read_file r | [] -> "" in
    match device with
    | _ when ingest_mode && (update_mode || indexed || presorted) ->
        `Error (false, "--ingest does not compose with --update/--indexed/--presorted")
    | _ when flush_every < 1 -> `Error (false, "--flush-every must be >= 1")
    | _ when ingest_mode ->
        let config = Nexsort.Config.make ?device ~pager_policy:policy ~tracer () in
        run_ingest ~ordering ~config ~metrics ~finish left right_paths flush_every output
    | _ when List.length right_paths <> 1 ->
        `Error (false, "expected exactly one RIGHT document (or pass --ingest)")
    | _ when indexed && update_mode -> `Error (false, "--indexed is not supported with --update")
    | Some _ when update_mode -> `Error (false, "--device is not supported with --update")
    | _ when indexed ->
        (* Index-assisted nested-loop merge (§1's "additional index"): works
           on unsorted inputs; the index's buffer pool is where the pager
           statistics come from. *)
        let spec = Option.value device ~default:Extmem.Device_spec.default in
        let block_size = 4096 in
        let load name s =
          let d = Extmem.Device_spec.scratch spec ~name ~block_size in
          Extmem.Device.load_string d s;
          d
        in
        let ldev = load "left" left and rdev = load "right" right in
        let odev = Extmem.Device_spec.scratch spec ~name:"output" ~block_size in
        let r =
          Xmerge.Indexed_merge.merge_devices ~policy ~ordering ~left:ldev ~right:rdev ~output:odev
            ()
        in
        write_file output (Extmem.Device.contents odev);
        let open Xmerge.Indexed_merge in
        Printf.eprintf "matched %d elements via a %d-entry index -> %s\n" r.matched_elements
          r.index_entries output;
        Cli_common.pp_io "left" r.left_io;
        Cli_common.pp_io "right" r.right_io;
        Cli_common.pp_io "index" r.index_io;
        Cli_common.pp_io "output" r.output_io;
        Cli_common.pp_pager "index pager" ~hits:r.pager_hits ~misses:r.pager_misses
          ~evictions:r.pager_evictions ~writebacks:r.pager_writebacks;
        Cli_common.write_metrics metrics
          (let rep = Obs.Report.create ~tool:"nexsort-merge-indexed" in
           Obs.Report.add rep "counts"
             (Obs.Json.Obj
                [ ("matched_elements", Obs.Json.Int r.matched_elements);
                  ("index_entries", Obs.Json.Int r.index_entries) ]);
           Obs.Report.add rep "io"
             (Obs.Json.Obj
                [ ("left", Obs.Json.io_stats r.left_io);
                  ("right", Obs.Json.io_stats r.right_io);
                  ("index", Obs.Json.io_stats r.index_io);
                  ("index_build", Obs.Json.io_stats r.index_build_io);
                  ("output", Obs.Json.io_stats r.output_io);
                  ("total", Obs.Json.io_stats r.total_io) ]);
           Obs.Report.add rep "pager"
             (Obs.Json.Obj
                [ ("hits", Obs.Json.Int r.pager_hits);
                  ("misses", Obs.Json.Int r.pager_misses);
                  ("evictions", Obs.Json.Int r.pager_evictions);
                  ("writebacks", Obs.Json.Int r.pager_writebacks) ]);
           Obs.Report.add rep "phases" (Obs.Span.to_json r.spans);
           Obs.Report.add rep "timing"
             (Obs.Json.Obj [ ("wall_s", Obs.Json.Float r.wall_seconds) ]);
           rep);
        finish (`Ok ())
    | Some spec ->
        (* Device-resident path: the raw inputs live on spec-built devices
           and the sorts + single-pass merge run on top, so the chosen
           stack carries the whole job's I/O.  Fused (the default), the
           sorted documents are never materialised on the devices. *)
        let block_size = 4096 in
        let config = Nexsort.Config.make ~block_size ~device:spec ~tracer () in
        let load name s =
          let d = Extmem.Device_spec.scratch spec ~name ~block_size in
          Extmem.Device.load_string d s;
          d
        in
        let ldev = load "left" left and rdev = load "right" right in
        let odev = Extmem.Device_spec.scratch spec ~name:"output" ~block_size in
        let r =
          if presorted then
            Xmerge.Struct_merge.merge_devices ~ordering ~left:ldev ~right:rdev ~output:odev ()
          else
            with_merge_sessions ~config (fun sessions ->
                Xmerge.Struct_merge.sort_and_merge_devices ~config ~fuse:(not no_fuse) ~sessions
                  ~ordering ~left:ldev ~right:rdev ~output:odev ())
        in
        write_file output (Extmem.Device.contents odev);
        Cli_common.write_metrics metrics
          (let rep = struct_merge_report ~tool:"nexsort-merge" r in
           Obs.Report.add rep "io"
             (Obs.Json.Obj
                [ ("left", Obs.Json.io_stats (Extmem.Io_stats.snapshot (Extmem.Device.stats ldev)));
                  ("right", Obs.Json.io_stats (Extmem.Io_stats.snapshot (Extmem.Device.stats rdev)));
                  ("output", Obs.Json.io_stats (Extmem.Io_stats.snapshot (Extmem.Device.stats odev)))
                ]);
           rep);
        Printf.eprintf "matched %d elements, emitted %d events -> %s\n"
          r.Xmerge.Struct_merge.matched_elements r.Xmerge.Struct_merge.output_events output;
        let sim =
          Extmem.Device.simulated_ms ldev +. Extmem.Device.simulated_ms rdev
          +. Extmem.Device.simulated_ms odev
        in
        if sim > 0. then Printf.eprintf "merge simulated io time: %.2fms\n" sim;
        finish (`Ok ())
    | None ->
    let config = Nexsort.Config.make ~tracer () in
    let result, summary, rep =
      if update_mode then begin
        let out, r =
          if presorted then Xmerge.Batch_update.apply_strings ~ordering ~base:left ~updates:right
          else
            Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering ~base:left
              ~updates:right ()
        in
        let rep =
          struct_merge_report ~tool:"nexsort-merge-update" r.Xmerge.Batch_update.merge
        in
        Obs.Report.add rep "updates"
          (Obs.Json.Obj
             [ ("deletes", Obs.Json.Int r.Xmerge.Batch_update.deletes);
               ("replaces", Obs.Json.Int r.Xmerge.Batch_update.replaces);
               ("unmatched_deletes", Obs.Json.Int r.Xmerge.Batch_update.unmatched_deletes) ]);
        ( out,
          Printf.sprintf "matched %d, deletes %d, replaces %d, no-op deletes %d"
            r.Xmerge.Batch_update.merge.Xmerge.Struct_merge.matched_elements
            r.Xmerge.Batch_update.deletes r.Xmerge.Batch_update.replaces
            r.Xmerge.Batch_update.unmatched_deletes,
          rep )
      end
      else begin
        let out, r =
          if presorted then Xmerge.Struct_merge.merge_strings ~ordering left right
          else if no_fuse then
            (* unfused strings sort in memory — no sessions to carve *)
            Xmerge.Struct_merge.sort_and_merge_strings ~config ~fuse:false ~ordering left right
          else
            with_merge_sessions ~config (fun sessions ->
                Xmerge.Struct_merge.sort_and_merge_strings ~config ~sessions ~ordering left
                  right)
        in
        ( out,
          Printf.sprintf "matched %d elements, emitted %d events"
            r.Xmerge.Struct_merge.matched_elements r.Xmerge.Struct_merge.output_events,
          struct_merge_report ~tool:"nexsort-merge" r )
      end
    in
    write_file output result;
    Cli_common.write_metrics metrics rep;
    Printf.eprintf "%s -> %s\n" summary output;
    finish (`Ok ())
  with
  | Xmlio.Parser.Error { line; col; msg } -> `Error (false, Printf.sprintf "%d:%d: %s" line col msg)
  | Xmlio.Tree.Malformed msg -> `Error (false, "malformed document: " ^ msg)
  | Xmerge.Struct_merge.Not_sorted msg -> `Error (false, "input not sorted: " ^ msg)
  | Extmem.Device.Fault (op, block) ->
      `Error
        ( false,
          Printf.sprintf "injected device fault: %s of block %d"
            (match op with Extmem.Device.Read -> "read" | Extmem.Device.Write -> "write")
            block )
  | Extmem.Memory_budget.Exhausted msg -> `Error (false, "memory budget exhausted: " ^ msg)
  | Sys_error msg -> `Error (false, msg)
  | Invalid_argument msg -> `Error (false, msg)

let cmd =
  let doc = "structurally merge two XML documents after sorting them (sort-merge join)" in
  let info = Cmd.info "nexsort-merge" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ ordering_term
        $ Arg.(
            value & flag
            & info [ "presorted" ] ~doc:"Inputs are already fully sorted; skip the sorting step.")
        $ Arg.(
            value & flag
            & info [ "update" ]
                ~doc:
                  "Treat the second document as a batch of updates (__op attributes: merge, \
                   delete, replace).")
        $ Arg.(
            value & flag
            & info [ "ingest" ]
                ~doc:
                  "Incremental maintenance: sort LEFT once, then apply every RIGHT document as \
                   a buffered update batch (__op markers as with $(b,--update)), flushing \
                   through the external priority queue instead of re-sorting.")
        $ Arg.(
            value & opt int 1
            & info [ "flush-every" ] ~docv:"N"
                ~doc:"With $(b,--ingest): flush the update queue after every N documents.")
        $ Arg.(
            value & flag
            & info [ "indexed" ]
                ~doc:
                  "Use the index-assisted nested-loop merge instead of sort-then-merge (works on \
                   unsorted inputs; reports the index buffer pool's hit/miss statistics).")
        $ Cli_common.policy_term
        $ Cli_common.device_term
        $ Cli_common.no_fuse_term
        $ Cli_common.metrics_term
        $ Cli_common.trace_term
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"LEFT")
        $ Arg.(value & pos_right 0 file [] & info [] ~docv:"RIGHT")
        $ Arg.(
            value & opt string "merged.xml" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")))

let () = exit (Cmd.eval cmd)
