(* nexsort-merge: sort two XML documents and structurally merge them in a
   single pass (Example 1.1), or apply a batch-update document. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let ordering_term =
  let parse s =
    match Nexsort.Ordering.of_spec_string s with
    | o -> Ok o
    | exception Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.(
    value
    & opt (conv (parse, fun ppf _ -> Format.pp_print_string ppf "<ordering>"))
        (Nexsort.Ordering.by_attr "id")
    & info [ "ordering"; "O" ] ~docv:"SPEC"
        ~doc:"Ordering specification (see $(b,nexsort --help)); must be scan-evaluable.")

let run ordering presorted update_mode device left_path right_path output =
  let left = read_file left_path and right = read_file right_path in
  try
    match device with
    | Some _ when update_mode -> `Error (false, "--device is not supported with --update")
    | Some spec ->
        (* Device-resident path: sort both inputs (unless presorted), load
           them onto spec-built devices and run the single-pass device
           merge, so the chosen stack carries the merge's I/O. *)
        let block_size = 4096 in
        let sort s =
          if presorted then s
          else
            fst
              (Nexsort.sort_string
                 ~config:(Nexsort.Config.make ~block_size ~device:spec ())
                 ~ordering s)
        in
        let load name s =
          let d = Extmem.Device_spec.scratch spec ~name ~block_size in
          Extmem.Device.load_string d s;
          d
        in
        let ldev = load "left" (sort left) and rdev = load "right" (sort right) in
        let odev = Extmem.Device_spec.scratch spec ~name:"output" ~block_size in
        let r = Xmerge.Struct_merge.merge_devices ~ordering ~left:ldev ~right:rdev ~output:odev () in
        write_file output (Extmem.Device.contents odev);
        Printf.eprintf "matched %d elements, emitted %d events -> %s\n"
          r.Xmerge.Struct_merge.matched_elements r.Xmerge.Struct_merge.output_events output;
        let sim =
          Extmem.Device.simulated_ms ldev +. Extmem.Device.simulated_ms rdev
          +. Extmem.Device.simulated_ms odev
        in
        if sim > 0. then Printf.eprintf "merge simulated io time: %.2fms\n" sim;
        `Ok ()
    | None ->
    let result, summary =
      if update_mode then begin
        let out, r =
          if presorted then Xmerge.Batch_update.apply_strings ~ordering ~base:left ~updates:right
          else Xmerge.Batch_update.sort_and_apply_strings ~ordering ~base:left ~updates:right ()
        in
        ( out,
          Printf.sprintf "matched %d, deletes %d, replaces %d, no-op deletes %d"
            r.Xmerge.Batch_update.merge.Xmerge.Struct_merge.matched_elements
            r.Xmerge.Batch_update.deletes r.Xmerge.Batch_update.replaces
            r.Xmerge.Batch_update.unmatched_deletes )
      end
      else begin
        let out, r =
          if presorted then Xmerge.Struct_merge.merge_strings ~ordering left right
          else Xmerge.Struct_merge.sort_and_merge_strings ~ordering left right
        in
        ( out,
          Printf.sprintf "matched %d elements, emitted %d events"
            r.Xmerge.Struct_merge.matched_elements r.Xmerge.Struct_merge.output_events )
      end
    in
    write_file output result;
    Printf.eprintf "%s -> %s\n" summary output;
    `Ok ()
  with
  | Xmlio.Parser.Error { line; col; msg } -> `Error (false, Printf.sprintf "%d:%d: %s" line col msg)
  | Xmerge.Struct_merge.Not_sorted msg -> `Error (false, "input not sorted: " ^ msg)
  | Extmem.Device.Fault (op, block) ->
      `Error
        ( false,
          Printf.sprintf "injected device fault: %s of block %d"
            (match op with Extmem.Device.Read -> "read" | Extmem.Device.Write -> "write")
            block )
  | Invalid_argument msg -> `Error (false, msg)

let cmd =
  let doc = "structurally merge two XML documents after sorting them (sort-merge join)" in
  let info = Cmd.info "nexsort-merge" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ ordering_term
        $ Arg.(
            value & flag
            & info [ "presorted" ] ~doc:"Inputs are already fully sorted; skip the sorting step.")
        $ Arg.(
            value & flag
            & info [ "update" ]
                ~doc:
                  "Treat the second document as a batch of updates (__op attributes: merge, \
                   delete, replace).")
        $ Cli_common.device_term
        $ Arg.(required & pos 0 (some file) None & info [] ~docv:"LEFT")
        $ Arg.(required & pos 1 (some file) None & info [] ~docv:"RIGHT")
        $ Arg.(
            value & opt string "merged.xml" & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Output file.")))

let () = exit (Cmd.eval cmd)
