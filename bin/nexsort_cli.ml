(* nexsort: sort an XML document in external memory.

   Reads INPUT, fully sorts it under the given ordering, writes OUTPUT.
   --algorithm selects NEXSORT (default), the key-path external merge sort
   baseline, or the internal-memory recursive sort; --stats prints the
   per-component I/O breakdown the paper's experiments measure. *)

open Cmdliner

type algorithm =
  | Nexsort_algo
  | Mergesort
  | Treesort
  | Xsort

let setup_logging verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let run verbose algorithm config ordering stats metrics trace targets select device input_path
    output_path =
  setup_logging verbose;
  match Cli_common.prepare_trace trace with
  | Error msg -> `Error (false, msg)
  | Ok tracer ->
  let xml = Cli_common.read_file input_path in
  let block_size = config.Nexsort.Config.block_size in
  let spec = Option.value device ~default:Extmem.Device_spec.default in
  (* the spec governs both endpoints and the sorter's internal devices *)
  let config = { config with Nexsort.Config.device = spec; tracer } in
  let built_in = Extmem.Device_spec.build_scratch spec ~name:"input" ~block_size in
  let input = built_in.Extmem.Device_spec.device in
  Extmem.Device.load_string input xml;
  let output = Extmem.Device_spec.scratch spec ~name:"output" ~block_size in
  Nexsort.Config.attach_tracing config ~name:"input" input;
  Nexsort.Config.attach_tracing config ~name:"output" output;
  Option.iter
    (Nexsort.Config.attach_trace_observer config ~name:"input")
    built_in.Extmem.Device_spec.trace;
  let device_stats () =
    if stats && device <> None then begin
      Printf.eprintf "device: %s (input layers: %s)\n"
        (Extmem.Device_spec.to_string spec)
        (String.concat " -> " (Extmem.Device.layers input));
      (match built_in.Extmem.Device_spec.trace with
      | Some trace ->
          Printf.eprintf "input access pattern: %s\n"
            (Format.asprintf "%a" Extmem.Trace.pp_summary (Extmem.Trace.summarize trace))
      | None -> ());
      let sim =
        Extmem.Device.simulated_ms input +. Extmem.Device.simulated_ms output
      in
      if sim > 0. then Printf.eprintf "endpoint simulated io time: %.2fms\n" sim
    end
  in
  let describe = function
    | Nexsort_algo -> "nexsort"
    | Mergesort -> "key-path external merge sort"
    | Treesort -> "internal-memory recursive sort"
    | Xsort -> "one-level XSort"
  in
  try
    let t0 = Unix.gettimeofday () in
    (match algorithm with
    | Nexsort_algo ->
        (* the single-job CLI is a one-job engine: same admission, carve
           and release machinery as nexsortd, zero queue wait *)
        let eng = Engine.for_config ~tracer config in
        let report, job_section =
          Fun.protect
            ~finally:(fun () -> Engine.destroy eng)
            (fun () ->
              let report, job =
                Engine.run eng ~tenant:"cli" config (fun job session ->
                    (Nexsort.sort_device ~session ~ordering ~input ~output (), job))
              in
              (* snapshot after release, so the engine counters include
                 this job's completion and any leak it left *)
              (report, Engine.job_json eng job))
        in
        Cli_common.write_file output_path (Extmem.Device.contents output);
        Cli_common.write_metrics metrics
          (let rep = Nexsort.metrics_report ~config report in
           Obs.Report.add rep "job" job_section;
           rep);
        if stats then begin
          Printf.eprintf "algorithm: %s\n" (describe algorithm);
          Printf.eprintf "%s\n" (Format.asprintf "%a" Nexsort.pp_report report);
          List.iter (fun (n, s) -> Cli_common.pp_io n s) report.Nexsort.breakdown
        end
    | Mergesort ->
        let report = Baselines.Keypath_sort.sort_device ~config ~ordering ~input ~output () in
        Cli_common.write_file output_path (Extmem.Device.contents output);
        Cli_common.write_metrics metrics
          (let open Baselines.Keypath_sort in
           let rep = Obs.Report.create ~tool:"nexsort-mergesort" in
           Obs.Report.add rep "counts"
             (Obs.Json.Obj
                [ ("records", Obs.Json.Int report.records);
                  ("record_bytes", Obs.Json.Int report.record_bytes);
                  ("initial_runs", Obs.Json.Int report.initial_runs);
                  ("merge_passes", Obs.Json.Int report.merge_passes) ]);
           Obs.Report.add rep "io"
             (Obs.Json.Obj
                [ ("input", Obs.Json.io_stats report.input_io);
                  ("temp", Obs.Json.io_stats report.temp_io);
                  ("output", Obs.Json.io_stats report.output_io);
                  ("total", Obs.Json.io_stats report.total_io) ]);
           Obs.Report.add rep "phases" (Obs.Span.to_json report.spans);
           Obs.Report.add rep "timing"
             (Obs.Json.Obj
                [ ("wall_s", Obs.Json.Float report.wall_seconds);
                  ("simulated_ms", Obs.Json.Float report.simulated_ms) ]);
           rep);
        if stats then begin
          Printf.eprintf "algorithm: %s\n" (describe algorithm);
          Printf.eprintf "records: %d (%d bytes), runs: %d, merge passes: %d, wall: %.3fs\n"
            report.Baselines.Keypath_sort.records report.Baselines.Keypath_sort.record_bytes
            report.Baselines.Keypath_sort.initial_runs report.Baselines.Keypath_sort.merge_passes
            report.Baselines.Keypath_sort.wall_seconds;
          Cli_common.pp_io "input" report.Baselines.Keypath_sort.input_io;
          Cli_common.pp_io "temp" report.Baselines.Keypath_sort.temp_io;
          Cli_common.pp_io "output" report.Baselines.Keypath_sort.output_io
        end
    | Xsort ->
        let selector = Option.map Xmlio.Xpath.parse select in
        let targets =
          match targets with
          | Some t -> String.split_on_char ',' t
          | None -> []
        in
        let report =
          Baselines.Xsort.sort_device ~config ?selector ~ordering ~targets ~input ~output ()
        in
        Cli_common.write_file output_path (Extmem.Device.contents output);
        Cli_common.write_metrics metrics
          (let open Baselines.Xsort in
           let rep = Obs.Report.create ~tool:"nexsort-xsort" in
           Obs.Report.add rep "counts"
             (Obs.Json.Obj
                [ ("targets_sorted", Obs.Json.Int report.targets_sorted);
                  ("children_sorted", Obs.Json.Int report.children_sorted);
                  ("spilled_sorts", Obs.Json.Int report.spilled_sorts) ]);
           Obs.Report.add rep "io"
             (Obs.Json.Obj
                [ ("input", Obs.Json.io_stats report.input_io);
                  ("temp", Obs.Json.io_stats report.temp_io);
                  ("output", Obs.Json.io_stats report.output_io);
                  ("total", Obs.Json.io_stats report.total_io) ]);
           Obs.Report.add rep "timing"
             (Obs.Json.Obj [ ("wall_s", Obs.Json.Float report.wall_seconds) ]);
           rep);
        if stats then begin
          Printf.eprintf "algorithm: %s\n" (describe algorithm);
          Printf.eprintf "targets sorted: %d, children sorted: %d, spilled sorts: %d, wall: %.3fs\n"
            report.Baselines.Xsort.targets_sorted report.Baselines.Xsort.children_sorted
            report.Baselines.Xsort.spilled_sorts report.Baselines.Xsort.wall_seconds;
          Cli_common.pp_io "input" report.Baselines.Xsort.input_io;
          Cli_common.pp_io "temp" report.Baselines.Xsort.temp_io;
          Cli_common.pp_io "output" report.Baselines.Xsort.output_io
        end
    | Treesort ->
        let sorted =
          Baselines.Tree_sort.sort_string
            ?depth_limit:config.Nexsort.Config.depth_limit
            ~keep_whitespace:config.Nexsort.Config.keep_whitespace ordering xml
        in
        Cli_common.write_file output_path sorted;
        Cli_common.write_metrics metrics
          (let rep = Obs.Report.create ~tool:"nexsort-treesort" in
           Obs.Report.add rep "timing"
             (Obs.Json.Obj [ ("wall_s", Obs.Json.Float (Unix.gettimeofday () -. t0)) ]);
           rep);
        if stats then
          Printf.eprintf "algorithm: %s\nwall: %.3fs\n" (describe algorithm)
            (Unix.gettimeofday () -. t0));
    device_stats ();
    Cli_common.write_trace trace tracer;
    `Ok ()
  with
  | Xmlio.Parser.Error { line; col; msg } ->
      `Error (false, Printf.sprintf "%s:%d:%d: %s" input_path line col msg)
  | Xmlio.Xpath.Parse_error msg -> `Error (false, "bad --select path: " ^ msg)
  | Extmem.Device.Fault (op, block) ->
      `Error
        ( false,
          Printf.sprintf "injected device fault: %s of block %d"
            (match op with Extmem.Device.Read -> "read" | Extmem.Device.Write -> "write")
            block )
  | Extmem.Memory_budget.Exhausted msg -> `Error (false, "memory budget exhausted: " ^ msg)
  | Sys_error msg -> `Error (false, msg)
  | Invalid_argument msg -> `Error (false, msg)

let algorithm_term =
  Arg.(
    value
    & opt
        (enum
           [ ("nexsort", Nexsort_algo); ("mergesort", Mergesort); ("treesort", Treesort);
             ("xsort", Xsort) ])
        Nexsort_algo
    & info [ "algorithm"; "a" ] ~docv:"ALGO"
        ~doc:
          "Sorting algorithm: $(b,nexsort) (default), $(b,mergesort) (key-path external merge \
           sort), $(b,treesort) (internal-memory recursive sort) or $(b,xsort) (one-level \
           sorting of target elements; see $(b,--targets)/$(b,--select)).")

let input_term = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT")

let output_term =
  Arg.(
    value & opt string "sorted.xml" & info [ "output"; "o" ] ~docv:"OUTPUT" ~doc:"Output file.")

let targets_term =
  Arg.(
    value & opt (some string) None
    & info [ "targets" ] ~docv:"TAG,TAG,..."
        ~doc:"For $(b,--algorithm xsort): sort the children of elements with these tags.")

let select_term =
  Arg.(
    value & opt (some string) None
    & info [ "select" ] ~docv:"PATH"
        ~doc:
          "For $(b,--algorithm xsort): sort the children of elements matched by this path \
           expression, e.g. $(b,//branch[@name='Durham']).")

let stats_term =
  Arg.(value & flag & info [ "stats"; "s" ] ~doc:"Print timing and I/O statistics to stderr.")

let verbose_term =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log the sorter's internal decisions.")

let cmd =
  let doc = "sort an XML document in external memory (NEXSORT, ICDE 2004)" in
  let info = Cmd.info "nexsort" ~version:"1.0.0" ~doc in
  Cmd.v info
    Term.(
      ret
        (const run $ verbose_term $ algorithm_term $ Cli_common.config_term
       $ Cli_common.ordering_term $ stats_term $ Cli_common.metrics_term
       $ Cli_common.trace_term $ targets_term $ select_term $ Cli_common.device_term
       $ input_term $ output_term))

let () = exit (Cmd.eval cmd)
