(** The paper's running example: personnel and payroll documents
    (Figure 1).

    [D1] comes from the personnel department (employee name and phone),
    [D2] from payroll (salary and bonus).  Both organise employees under
    matching region and branch elements, but list them in unrelated
    orders; some employees appear in only one document (the merge is an
    outer join).  Used by the merge examples, tests and the T1
    benchmark. *)

type pair = {
  personnel : string;  (** D1 as XML text *)
  payroll : string;    (** D2 as XML text *)
}

val generate :
  ?seed:int ->
  ?regions:int ->
  ?branches_per_region:int ->
  ?employees_per_branch:int ->
  ?overlap:float ->
  unit ->
  pair
(** Generate a document pair.  [overlap] (default 0.7) is the fraction of
    employees present in both documents; the rest are split between
    personnel-only and payroll-only.  Children appear in random
    (unsorted) order in both documents.  Defaults give a small example
    (2 regions x 2 branches x 3 employees). *)

val figure_1_d1 : string
(** The exact D1 document drawn in Figure 1 of the paper. *)

val figure_1_d2 : string
(** The exact D2 document drawn in Figure 1 of the paper. *)

val ordering : Nexsort.Ordering.t
(** The merge ordering of Example 1.1: regions and branches by [name],
    employees by [ID], everything else by tag. *)
