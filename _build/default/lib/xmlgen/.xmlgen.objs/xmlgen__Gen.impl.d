lib/xmlgen/gen.ml: Buffer Extmem List Printf Splitmix String Xmlio
