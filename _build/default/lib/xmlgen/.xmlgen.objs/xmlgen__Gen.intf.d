lib/xmlgen/gen.mli: Extmem Xmlio
