lib/xmlgen/splitmix.mli:
