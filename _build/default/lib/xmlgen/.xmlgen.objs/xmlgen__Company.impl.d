lib/xmlgen/company.ml: Array List Nexsort Printf Splitmix Xmlio
