lib/xmlgen/splitmix.ml: Char Int64
