lib/xmlgen/company.mli: Nexsort
