type pair = {
  personnel : string;
  payroll : string;
}

let region_names =
  [| "NE"; "AC"; "NW"; "SE"; "SW"; "MW"; "GL"; "MA"; "PC"; "RM" |]

let city_names =
  [| "Durham"; "Atlanta"; "Miami"; "Boston"; "Seattle"; "Denver"; "Chicago"; "Austin";
     "Portland"; "Raleigh"; "Tampa"; "Phoenix" |]

let last_names =
  [| "Smith"; "Jones"; "Brown"; "Young"; "Silber"; "Yang"; "Vitter"; "Arge"; "Tufte"; "Maier" |]

let shuffle rng a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

let element name attrs children = Xmlio.Tree.Element { Xmlio.Tree.name; attrs; children }

let text s = Xmlio.Tree.Text s

let generate ?(seed = 7) ?(regions = 2) ?(branches_per_region = 2) ?(employees_per_branch = 3)
    ?(overlap = 0.7) () =
  let rng = Splitmix.create seed in
  let next_id =
    let c = ref 100 in
    fun () ->
      c := !c + 1 + Splitmix.int rng 7;
      !c
  in
  let employee_personnel id =
    element "employee"
      [ ("ID", string_of_int id) ]
      [
        element "name" [] [ text last_names.(Splitmix.int rng (Array.length last_names)) ];
        element "phone" [] [ text (Printf.sprintf "555%04d" (Splitmix.int rng 10_000)) ];
      ]
  in
  let employee_payroll id =
    element "employee"
      [ ("ID", string_of_int id) ]
      [
        element "salary" [] [ text (string_of_int (30_000 + (1000 * Splitmix.int rng 70))) ];
        element "bonus" [] [ text (string_of_int (1000 * Splitmix.int rng 10)) ];
      ]
  in
  let branch region_i branch_i =
    let name =
      city_names.(((region_i * branches_per_region) + branch_i) mod Array.length city_names)
    in
    (* keep branch names unique within a region even for large fan-outs *)
    let name =
      if branches_per_region <= Array.length city_names then name
      else Printf.sprintf "%s-%d" name branch_i
    in
    let ids = Array.init employees_per_branch (fun _ -> next_id ()) in
    let n_both = int_of_float (ceil (overlap *. float_of_int employees_per_branch)) in
    let both = Array.sub ids 0 n_both in
    let rest = Array.sub ids n_both (employees_per_branch - n_both) in
    (* split the rest alternately between the two documents *)
    let only1 = Array.of_list (List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list rest)) in
    let only2 = Array.of_list (List.filteri (fun i _ -> i mod 2 = 1) (Array.to_list rest)) in
    let personnel_ids = shuffle rng (Array.append both only1) in
    let payroll_ids = shuffle rng (Array.append both only2) in
    ( element "branch" [ ("name", name) ]
        (Array.to_list (Array.map employee_personnel personnel_ids)),
      element "branch" [ ("name", name) ]
        (Array.to_list (Array.map employee_payroll payroll_ids)) )
  in
  let region i =
    let name = region_names.(i mod Array.length region_names) in
    let pairs = List.init branches_per_region (branch i) in
    let b1 = shuffle rng (Array.of_list (List.map fst pairs)) in
    let b2 = shuffle rng (Array.of_list (List.map snd pairs)) in
    ( element "region" [ ("name", name) ] (Array.to_list b1),
      element "region" [ ("name", name) ] (Array.to_list b2) )
  in
  let region_pairs = List.init regions region in
  let r1 = shuffle rng (Array.of_list (List.map fst region_pairs)) in
  let r2 = shuffle rng (Array.of_list (List.map snd region_pairs)) in
  {
    personnel = Xmlio.Tree.to_string (element "company" [] (Array.to_list r1));
    payroll = Xmlio.Tree.to_string (element "company" [] (Array.to_list r2));
  }

let figure_1_d1 =
  "<company>\
   <region name=\"NE\"/>\
   <region name=\"AC\">\
   <branch name=\"Durham\">\
   <employee ID=\"454\"/>\
   <employee ID=\"323\"><name>Smith</name><phone>5552345</phone></employee>\
   </branch>\
   <branch name=\"Atlanta\"/>\
   </region>\
   </company>"

let figure_1_d2 =
  "<company>\
   <region name=\"NW\"/>\
   <region name=\"AC\">\
   <branch name=\"Miami\"/>\
   <branch name=\"Durham\">\
   <employee ID=\"844\"/>\
   <employee ID=\"323\"><salary>45000</salary><bonus>5000</bonus></employee>\
   </branch>\
   </region>\
   </company>"

let ordering =
  Nexsort.Ordering.make
    ~rules:
      [ ("region", Nexsort.Ordering.By_attr "name");
        ("branch", Nexsort.Ordering.By_attr "name");
        ("employee", Nexsort.Ordering.By_attr "ID") ]
    Nexsort.Ordering.By_tag
