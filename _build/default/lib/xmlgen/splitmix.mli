(** SplitMix64: a small, fast, deterministic PRNG.

    Workload generation must be reproducible across runs and independent
    of the global [Random] state, so the generators carry their own
    generator seeded explicitly. *)

type t

val create : int -> t
(** Seed a fresh stream. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].  [bound] must be positive. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [[lo, hi]] inclusive. *)

val letter : t -> char
(** A uniform lowercase letter. *)

val split : t -> t
(** An independent stream (for generating subtrees in parallel orders). *)
