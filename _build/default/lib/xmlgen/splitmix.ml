type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit native int non-negatively *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Splitmix.in_range: empty range";
  lo + int t (hi - lo + 1)

let letter t = Char.chr (Char.code 'a' + int t 26)

let split t = { state = next_int64 t }
