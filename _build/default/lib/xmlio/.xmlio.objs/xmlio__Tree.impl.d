lib/xmlio/tree.ml: Event Format List Parser String Writer
