lib/xmlio/parser.ml: Buffer Char Escape Event Extmem List Printf String
