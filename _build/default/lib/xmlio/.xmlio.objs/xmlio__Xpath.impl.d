lib/xmlio/xpath.ml: List Printf String Tree
