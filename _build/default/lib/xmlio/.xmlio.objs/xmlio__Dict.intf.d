lib/xmlio/dict.mli:
