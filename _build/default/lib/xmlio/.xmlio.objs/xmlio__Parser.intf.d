lib/xmlio/parser.mli: Event Extmem
