lib/xmlio/tree.mli: Event Format Parser
