lib/xmlio/writer.mli: Buffer Event Extmem
