lib/xmlio/escape.ml: Buffer Char Printf String
