lib/xmlio/escape.mli:
