lib/xmlio/xpath.mli: Event Tree
