lib/xmlio/dtd.ml: Dict Format Hashtbl List Printf String Tree
