lib/xmlio/writer.ml: Buffer Escape Event Extmem List String
