lib/xmlio/dict.ml: Extmem Hashtbl Printf
