lib/xmlio/event.mli: Format
