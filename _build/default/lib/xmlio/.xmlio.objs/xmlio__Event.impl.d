lib/xmlio/event.ml: Format List
