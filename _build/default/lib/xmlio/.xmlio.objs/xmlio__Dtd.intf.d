lib/xmlio/dtd.mli: Dict Format Tree
