(** A small XPath subset for selecting elements.

    The XMLTK toolkit's XSort (§2 of the paper) lets users name the
    elements whose children should be sorted; path expressions are the
    natural way to do that, and they are also handy for querying sorted
    documents in the examples.  Supported grammar:

    {v
    path  ::= '/' step ( '/' step | '//' step )*  |  '//' step ( ... )*
    step  ::= (name | '*') pred*
    pred  ::= '[' '@' name '=' '\'' value '\'' ']'
            | '[' '@' name ']'
            | '[' number ']'          (1-based position among siblings)
    v}

    ['/'] is the child axis, ['//'] descendant-or-self.  Examples:
    [/company/region/branch], [//employee\[@ID='323'\]],
    [/company/*\[2\]//name]. *)

type t

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed expressions. *)

val to_string : t -> string
(** A normalized rendering of the expression. *)

val select : t -> Tree.t -> Tree.element list
(** All elements of the document matching the path, in document order. *)

val matches_chain : t -> (string * Event.attr list) list -> bool
(** [matches_chain p chain] decides whether an element whose
    ancestor-or-self chain is [chain] (root first, the element itself
    last, each with its attributes) is selected by [p].  This is the
    streaming form used to pick targets during a scan; positional
    predicates are not decidable from a chain alone and raise
    [Invalid_argument]. *)

val has_positional : t -> bool
(** Whether the expression uses positional predicates (and therefore
    cannot drive {!matches_chain}). *)
