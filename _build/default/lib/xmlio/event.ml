type attr = string * string

type t =
  | Start of string * attr list
  | End of string
  | Text of string

let start_name = function
  | Start (name, _) -> Some name
  | End _ | Text _ -> None

let attr k = function
  | Start (_, attrs) -> List.assoc_opt k attrs
  | End _ | Text _ -> None

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Start (name, attrs) ->
      Format.fprintf ppf "Start(%s%a)" name
        (fun ppf l -> List.iter (fun (k, v) -> Format.fprintf ppf " %s=%S" k v) l)
        attrs
  | End name -> Format.fprintf ppf "End(%s)" name
  | Text s -> Format.fprintf ppf "Text(%S)" s

let to_debug_string e = Format.asprintf "%a" pp e
