type t = {
  by_string : (string, int) Hashtbl.t;
  by_id : string Extmem.Vec.t;
}

let create () = { by_string = Hashtbl.create 64; by_id = Extmem.Vec.create () }

let intern d s =
  match Hashtbl.find_opt d.by_string s with
  | Some id -> id
  | None ->
      let id = Extmem.Vec.length d.by_id in
      Hashtbl.add d.by_string s id;
      Extmem.Vec.push d.by_id s;
      id

let find d s = Hashtbl.find_opt d.by_string s

let lookup d id =
  if id < 0 || id >= Extmem.Vec.length d.by_id then
    invalid_arg (Printf.sprintf "Dict.lookup: unknown id %d" id);
  Extmem.Vec.get d.by_id id

let size d = Extmem.Vec.length d.by_id

let to_list d = Extmem.Vec.to_list d.by_id
