type pred =
  | Attr_eq of string * string
  | Attr_exists of string
  | Position of int

type test =
  | Name of string
  | Any

type step = {
  axis : [ `Child | `Descendant ];
  test : test;
  preds : pred list;
}

type t = step list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* ---- parsing ---- *)

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '-' | '.' -> true
  | _ -> false

type cursor = {
  text : string;
  mutable pos : int;
}

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let read_name c =
  let start = c.pos in
  while
    match peek c with
    | Some ch when is_name_char ch -> true
    | _ -> false
  do
    advance c
  done;
  if c.pos = start then fail "name expected at offset %d" start;
  String.sub c.text start (c.pos - start)

let read_pred c =
  (* after '[' *)
  match peek c with
  | Some '@' ->
      advance c;
      let name = read_name c in
      (match peek c with
      | Some ']' ->
          advance c;
          Attr_exists name
      | Some '=' ->
          advance c;
          (match peek c with
          | Some '\'' -> advance c
          | _ -> fail "expected quoted value in predicate");
          let start = c.pos in
          while peek c <> Some '\'' && peek c <> None do
            advance c
          done;
          if peek c = None then fail "unterminated predicate value";
          let v = String.sub c.text start (c.pos - start) in
          advance c;
          (match peek c with
          | Some ']' ->
              advance c;
              Attr_eq (name, v)
          | _ -> fail "expected closing bracket")
      | _ -> fail "malformed attribute predicate")
  | Some ('0' .. '9') ->
      let start = c.pos in
      while
        match peek c with
        | Some ('0' .. '9') -> true
        | _ -> false
      do
        advance c
      done;
      let n = int_of_string (String.sub c.text start (c.pos - start)) in
      if n < 1 then fail "positions are 1-based";
      (match peek c with
      | Some ']' ->
          advance c;
          Position n
      | _ -> fail "expected closing bracket")
  | _ -> fail "unsupported predicate at offset %d" c.pos

let read_step c axis =
  let test =
    match peek c with
    | Some '*' ->
        advance c;
        Any
    | Some ch when is_name_char ch -> Name (read_name c)
    | _ -> fail "step expected at offset %d" c.pos
  in
  let rec preds acc =
    match peek c with
    | Some '[' ->
        advance c;
        preds (read_pred c :: acc)
    | _ -> List.rev acc
  in
  { axis; test; preds = preds [] }

let parse s =
  if s = "" then fail "empty path";
  let c = { text = s; pos = 0 } in
  let axis_of_slashes () =
    match peek c with
    | Some '/' -> (
        advance c;
        match peek c with
        | Some '/' ->
            advance c;
            Some `Descendant
        | _ -> Some `Child)
    | None -> None
    | Some ch -> fail "expected '/', found %C" ch
  in
  let rec steps acc =
    match axis_of_slashes () with
    | None -> List.rev acc
    | Some axis -> steps (read_step c axis :: acc)
  in
  let result = steps [] in
  if result = [] then fail "path has no steps";
  result

let to_string t =
  String.concat ""
    (List.map
       (fun s ->
         (match s.axis with `Child -> "/" | `Descendant -> "//")
         ^ (match s.test with Name n -> n | Any -> "*")
         ^ String.concat ""
             (List.map
                (function
                  | Attr_eq (k, v) -> Printf.sprintf "[@%s='%s']" k v
                  | Attr_exists k -> Printf.sprintf "[@%s]" k
                  | Position n -> Printf.sprintf "[%d]" n)
                s.preds))
       t)

let has_positional t =
  List.exists (fun s -> List.exists (function Position _ -> true | _ -> false) s.preds) t

(* ---- evaluation over trees ---- *)

let test_matches test (e : Tree.element) =
  match test with
  | Any -> true
  | Name n -> e.Tree.name = n

let attr_preds_hold preds (e : Tree.element) =
  List.for_all
    (function
      | Attr_eq (k, v) -> List.assoc_opt k e.Tree.attrs = Some v
      | Attr_exists k -> List.mem_assoc k e.Tree.attrs
      | Position _ -> true (* handled separately *))
    preds

let positional_holds preds ~index_among_matching =
  List.for_all
    (function
      | Position n -> index_among_matching = n
      | Attr_eq _ | Attr_exists _ -> true)
    preds

(* elements among [nodes] (a sibling list) matched by [step], with
   positional predicates counted among the name-test matches *)
let step_over_children step nodes =
  let matching = ref 0 in
  List.filter_map
    (function
      | Tree.Text _ -> None
      | Tree.Element e ->
          if test_matches step.test e then begin
            incr matching;
            if attr_preds_hold step.preds e && positional_holds step.preds ~index_among_matching:!matching
            then Some e
            else None
          end
          else None)
    nodes

let rec descendants_or_self (e : Tree.element) =
  e
  :: List.concat_map
       (function
         | Tree.Element c -> descendants_or_self c
         | Tree.Text _ -> [])
       e.Tree.children

let select t tree =
  let root =
    match tree with
    | Tree.Element e -> e
    | Tree.Text _ -> raise (Parse_error "document has no root element")
  in
  (* context: a list of candidate elements; the first step applies to the
     (virtual) document node, so its child axis looks at the root itself *)
  let apply_step contexts step =
    List.concat_map
      (fun (e : Tree.element) ->
        match step.axis with
        | `Child -> step_over_children step e.Tree.children
        | `Descendant ->
            (* descendant-or-self of each child, plus positional predicates
               are interpreted per parent sibling list; for the descendant
               axis we fall back to attribute predicates only *)
            List.concat_map
              (fun d ->
                if test_matches step.test d && attr_preds_hold step.preds d then [ d ] else [])
              (List.concat_map
                 (function
                   | Tree.Element c -> descendants_or_self c
                   | Tree.Text _ -> [])
                 e.Tree.children))
      contexts
  in
  match t with
  | [] -> []
  | first :: rest ->
      (* the document node: pretend the root is the only child *)
      let doc = { Tree.name = "#doc"; attrs = []; children = [ Tree.Element root ] } in
      let init =
        match first.axis with
        | `Child -> apply_step [ doc ] { first with axis = `Child }
        | `Descendant ->
            let all = descendants_or_self root in
            let matching = ref 0 in
            List.filter
              (fun e ->
                if test_matches first.test e then begin
                  incr matching;
                  attr_preds_hold first.preds e
                  && positional_holds first.preds ~index_among_matching:!matching
                end
                else false)
              all
      in
      List.fold_left apply_step init rest

(* ---- streaming chain matching ---- *)

let matches_chain t chain =
  if has_positional t then
    invalid_arg "Xpath.matches_chain: positional predicates need sibling context";
  let holds step (name, attrs) =
    (match step.test with Any -> true | Name n -> n = name)
    && List.for_all
         (function
           | Attr_eq (k, v) -> List.assoc_opt k attrs = Some v
           | Attr_exists k -> List.mem_assoc k attrs
           | Position _ -> true)
         step.preds
  in
  (* match steps against the chain left-to-right; `Child consumes exactly
     the next chain element, `Descendant any non-empty suffix start *)
  let rec go steps chain =
    match (steps, chain) with
    | [], [] -> true
    | [], _ :: _ -> false
    | _ :: _, [] -> false
    | ({ axis = `Child; _ } as s) :: srest, c :: crest -> holds s c && go srest crest
    | ({ axis = `Descendant; _ } as s) :: srest, (_ :: crest as all) ->
        (holds s (List.hd all) && go srest crest) || go steps crest
  in
  go t chain

let select_strings t s = select t (Tree.of_string s) [@@warning "-32"]
