type t = {
  sink : string -> unit;
  indent : bool;
  mutable depth : int;
  mutable open_tag : bool;     (* a '<name attrs' is open, '>' not yet emitted *)
  mutable had_children : bool; (* current element got child markup (for indent) *)
}

let to_fn ?(decl = false) ?(indent = false) sink =
  if decl then sink "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  { sink; indent; depth = 0; open_tag = false; had_children = false }

let to_buffer ?decl ?indent buf = to_fn ?decl ?indent (Buffer.add_string buf)

let to_block_writer ?decl ?indent w = to_fn ?decl ?indent (Extmem.Block_writer.write_string w)

let close_open_tag t = if t.open_tag then begin t.sink ">"; t.open_tag <- false end

let newline_indent t =
  if t.indent then begin
    t.sink "\n";
    t.sink (String.make (2 * t.depth) ' ')
  end

let event t e =
  match e with
  | Event.Start (name, attrs) ->
      close_open_tag t;
      if t.depth = 0 || t.indent then newline_indent t;
      t.sink "<";
      t.sink name;
      List.iter
        (fun (k, v) ->
          t.sink " ";
          t.sink k;
          t.sink "=\"";
          t.sink (Escape.escape_attr v);
          t.sink "\"")
        attrs;
      t.open_tag <- true;
      t.had_children <- false;
      t.depth <- t.depth + 1
  | Event.End name ->
      if t.depth = 0 then invalid_arg "Writer: end tag with no open element";
      t.depth <- t.depth - 1;
      if t.open_tag then begin
        t.sink "/>";
        t.open_tag <- false
      end
      else begin
        if t.indent && t.had_children then newline_indent t;
        t.sink "</";
        t.sink name;
        t.sink ">"
      end;
      t.had_children <- true
  | Event.Text s ->
      if t.depth = 0 then begin
        if not (String.for_all (function ' ' | '\t' | '\n' | '\r' -> true | _ -> false) s) then
          invalid_arg "Writer: text outside the root element"
      end
      else begin
        close_open_tag t;
        t.sink (Escape.escape_text s)
      end

let events t = List.iter (event t)

let close t = if t.depth <> 0 then invalid_arg "Writer: unclosed elements remain"

let events_to_string ?decl ?indent evs =
  let buf = Buffer.create 1024 in
  let t = to_buffer ?decl ?indent buf in
  events t evs;
  close t;
  Buffer.contents buf
