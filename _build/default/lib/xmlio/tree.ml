type t =
  | Element of element
  | Text of string

and element = {
  name : string;
  attrs : Event.attr list;
  children : t list;
}

exception Malformed of string

let element ?(attrs = []) name children = Element { name; attrs; children }

let text s = Text s

let of_next next =
  (* Parse one node from the event source; the first event must be Start. *)
  let rec node = function
    | Event.Start (name, attrs) ->
        let children = children_of [] in
        Element { name; attrs; children }
    | Event.Text _ | Event.End _ -> raise (Malformed "expected a start tag")
  and children_of acc =
    match next () with
    | None -> raise (Malformed "unexpected end of events")
    | Some (Event.End _) -> List.rev acc
    | Some (Event.Text s) -> children_of (Text s :: acc)
    | Some (Event.Start _ as e) -> children_of (node e :: acc)
  in
  match next () with
  | None -> raise (Malformed "empty event stream")
  | Some e -> node e

let of_events evs =
  let rest = ref evs in
  let next () =
    match !rest with
    | [] -> None
    | e :: tl ->
        rest := tl;
        Some e
  in
  let t = of_next next in
  if !rest <> [] then raise (Malformed "trailing events after the root element");
  t

let of_parser p = of_next (fun () -> Parser.next p)

let of_string ?keep_whitespace s = of_parser (Parser.of_string ?keep_whitespace s)

let to_events t =
  let rec go acc = function
    | Text s -> Event.Text s :: acc
    | Element { name; attrs; children } ->
        let acc = Event.Start (name, attrs) :: acc in
        let acc = List.fold_left go acc children in
        Event.End name :: acc
  in
  List.rev (go [] t)

let to_string ?decl ?indent t = Writer.events_to_string ?decl ?indent (to_events t)

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Element x, Element y ->
      String.equal x.name y.name && x.attrs = y.attrs
      && List.length x.children = List.length y.children
      && List.for_all2 equal x.children y.children
  | Text _, Element _ | Element _, Text _ -> false

let rec size = function
  | Text _ -> 1
  | Element { children; _ } -> List.fold_left (fun acc c -> acc + size c) 1 children

let rec element_count = function
  | Text _ -> 0
  | Element { children; _ } -> List.fold_left (fun acc c -> acc + element_count c) 1 children

let rec height = function
  | Text _ -> 0
  | Element { children; _ } -> 1 + List.fold_left (fun acc c -> max acc (height c)) 0 children

let rec max_fanout = function
  | Text _ -> 0
  | Element { children; _ } ->
      List.fold_left (fun acc c -> max acc (max_fanout c)) (List.length children) children

let rec map_children f = function
  | Text _ as t -> t
  | Element e ->
      let children = List.map (map_children f) e.children in
      let e = { e with children } in
      Element { e with children = f e }

let rec fold f acc t =
  match t with
  | Text _ -> f acc t
  | Element { children; _ } ->
      let acc = f acc t in
      List.fold_left (fold f) acc children

let pp ppf t = Format.pp_print_string ppf (to_string ~indent:true t)
