(** SAX-style XML events.

    The streaming interfaces of this library — parser, writer, sorter —
    exchange documents as sequences of these events, the "units of XML
    data" of the paper's pseudo-code (Figure 4, line 3). *)

type attr = string * string
(** Attribute name and (unescaped) value.  Order is preserved. *)

type t =
  | Start of string * attr list  (** start tag: element name, attributes *)
  | End of string                (** end tag: element name *)
  | Text of string               (** character data (unescaped) *)

val start_name : t -> string option
(** The element name when the event is a [Start]. *)

val attr : string -> t -> string option
(** [attr k e] is the value of attribute [k] when [e] is a [Start] that
    carries it. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_debug_string : t -> string
