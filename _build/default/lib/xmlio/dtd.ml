type model =
  | Elem_name of string
  | Seq of model list
  | Choice of model list
  | Opt of model
  | Star of model
  | Plus of model

type content =
  | Empty
  | Any
  | Mixed of string list
  | Children of model

type att_type =
  | Cdata
  | Id
  | Idref
  | Nmtoken
  | Enum of string list

type att_default =
  | Required
  | Implied
  | Fixed of string
  | Default of string

type att_def = {
  att_name : string;
  att_type : att_type;
  att_default : att_default;
}

type t = {
  elements : (string * content) list; (* declaration order *)
  attlists : (string * att_def list) list;
}

exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Syntax_error m)) fmt

let empty = { elements = []; attlists = [] }

(* ---- tokenizing the subset text ---- *)

type cursor = {
  text : string;
  mutable pos : int;
}

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let is_ws = function
  | ' ' | '\t' | '\n' | '\r' -> true
  | _ -> false

let skip_ws c =
  while
    match peek c with
    | Some ch when is_ws ch -> true
    | _ -> false
  do
    advance c
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '-' | '.' | '#' -> true
  | _ -> false

let read_name c =
  skip_ws c;
  let start = c.pos in
  while
    match peek c with
    | Some ch when is_name_char ch -> true
    | _ -> false
  do
    advance c
  done;
  if c.pos = start then fail "name expected at offset %d" start;
  String.sub c.text start (c.pos - start)

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail "expected %C, found %C at offset %d" ch x c.pos
  | None -> fail "expected %C, found end of DTD" ch

let looking_at c s =
  c.pos + String.length s <= String.length c.text && String.sub c.text c.pos (String.length s) = s

(* Content model grammar:
   cp    is a name or a group, optionally followed by ?, + or a star;
   group is '(' cp (("," cp)... or ("|" cp)...) ')' *)

let rec parse_cp c =
  skip_ws c;
  let base =
    match peek c with
    | Some '(' ->
        advance c;
        parse_group c
    | Some _ -> Elem_name (read_name c)
    | None -> fail "content particle expected"
  in
  match peek c with
  | Some '?' ->
      advance c;
      Opt base
  | Some '*' ->
      advance c;
      Star base
  | Some '+' ->
      advance c;
      Plus base
  | _ -> base

and parse_group c =
  let first = parse_cp c in
  skip_ws c;
  match peek c with
  | Some ')' ->
      advance c;
      first
  | Some (',' as sep) | Some ('|' as sep) ->
      let rec rest acc =
        advance c;
        let cp = parse_cp c in
        skip_ws c;
        match peek c with
        | Some ch when ch = sep -> rest (cp :: acc)
        | Some ')' ->
            advance c;
            List.rev (cp :: acc)
        | Some ch -> fail "mixed separators %C and %C in a group" sep ch
        | None -> fail "unterminated group"
      in
      let parts = rest [ first ] in
      if sep = ',' then Seq parts else Choice parts
  | Some ch -> fail "unexpected %C in content model" ch
  | None -> fail "unterminated group"

let parse_content c =
  skip_ws c;
  if looking_at c "EMPTY" then begin
    c.pos <- c.pos + 5;
    Empty
  end
  else if looking_at c "ANY" then begin
    c.pos <- c.pos + 3;
    Any
  end
  else begin
    expect c '(';
    skip_ws c;
    if looking_at c "#PCDATA" then begin
      c.pos <- c.pos + 7;
      let rec names acc =
        skip_ws c;
        match peek c with
        | Some '|' ->
            advance c;
            names (read_name c :: acc)
        | Some ')' ->
            advance c;
            (* optional trailing '*' *)
            (match peek c with
            | Some '*' -> advance c
            | _ -> ());
            List.rev acc
        | Some ch -> fail "unexpected %C in mixed content" ch
        | None -> fail "unterminated mixed content"
      in
      Mixed (names [])
    end
    else Children (parse_group c)
  end

let parse_att_type c =
  skip_ws c;
  if looking_at c "CDATA" then begin
    c.pos <- c.pos + 5;
    Cdata
  end
  else if looking_at c "IDREF" then begin
    c.pos <- c.pos + 5;
    Idref
  end
  else if looking_at c "ID" then begin
    c.pos <- c.pos + 2;
    Id
  end
  else if looking_at c "NMTOKEN" then begin
    c.pos <- c.pos + 7;
    Nmtoken
  end
  else if peek c = Some '(' then begin
    advance c;
    let rec names acc =
      let n = read_name c in
      skip_ws c;
      match peek c with
      | Some '|' ->
          advance c;
          names (n :: acc)
      | Some ')' ->
          advance c;
          List.rev (n :: acc)
      | _ -> fail "unterminated enumeration"
    in
    Enum (names [])
  end
  else fail "attribute type expected at offset %d" c.pos

let read_quoted c =
  skip_ws c;
  match peek c with
  | Some (('"' | '\'') as q) ->
      advance c;
      let start = c.pos in
      while peek c <> Some q do
        match peek c with
        | Some _ -> advance c
        | None -> fail "unterminated default value"
      done;
      let v = String.sub c.text start (c.pos - start) in
      advance c;
      v
  | _ -> fail "quoted value expected at offset %d" c.pos

let parse_att_default c =
  skip_ws c;
  if looking_at c "#REQUIRED" then begin
    c.pos <- c.pos + 9;
    Required
  end
  else if looking_at c "#IMPLIED" then begin
    c.pos <- c.pos + 8;
    Implied
  end
  else if looking_at c "#FIXED" then begin
    c.pos <- c.pos + 6;
    Fixed (read_quoted c)
  end
  else Default (read_quoted c)

let parse subset =
  let c = { text = subset; pos = 0 } in
  let elements = ref [] in
  let attlists = ref [] in
  let rec decls () =
    skip_ws c;
    match peek c with
    | None -> ()
    | Some '<' ->
        if looking_at c "<!--" then begin
          (* skip comment *)
          c.pos <- c.pos + 4;
          let rec close () =
            if looking_at c "-->" then c.pos <- c.pos + 3
            else if c.pos >= String.length c.text then fail "unterminated comment"
            else begin
              advance c;
              close ()
            end
          in
          close ();
          decls ()
        end
        else if looking_at c "<!ELEMENT" then begin
          c.pos <- c.pos + 9;
          let name = read_name c in
          let content = parse_content c in
          expect c '>';
          elements := (name, content) :: !elements;
          decls ()
        end
        else if looking_at c "<!ATTLIST" then begin
          c.pos <- c.pos + 9;
          let elem = read_name c in
          let rec defs acc =
            skip_ws c;
            match peek c with
            | Some '>' ->
                advance c;
                List.rev acc
            | Some _ ->
                let att_name = read_name c in
                let att_type = parse_att_type c in
                let att_default = parse_att_default c in
                defs ({ att_name; att_type; att_default } :: acc)
            | None -> fail "unterminated ATTLIST"
          in
          let defs = defs [] in
          attlists := (elem, defs) :: !attlists;
          decls ()
        end
        else fail "unknown declaration at offset %d" c.pos
    | Some ch -> fail "unexpected %C between declarations" ch
  in
  decls ();
  { elements = List.rev !elements; attlists = List.rev !attlists }

let element_names t = List.map fst t.elements

let content_model t name = List.assoc_opt name t.elements

let attributes t elem =
  List.concat_map (fun (e, defs) -> if e = elem then defs else []) t.attlists

let names t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      out := n :: !out
    end
  in
  List.iter
    (fun (n, content) ->
      add n;
      match content with
      | Mixed ns -> List.iter add ns
      | Children m ->
          let rec walk = function
            | Elem_name n -> add n
            | Seq l | Choice l -> List.iter walk l
            | Opt m | Star m | Plus m -> walk m
          in
          walk m
      | Empty | Any -> ())
    t.elements;
  List.iter
    (fun (e, defs) ->
      add e;
      List.iter (fun d -> add d.att_name) defs)
    t.attlists;
  List.rev !out

let preload t dict = List.iter (fun n -> ignore (Dict.intern dict n)) (names t)

(* ---- validation by Brzozowski derivatives ---- *)

let rec nullable = function
  | Elem_name _ -> false
  | Seq l -> List.for_all nullable l
  | Choice l -> List.exists nullable l
  | Opt _ | Star _ -> true
  | Plus m -> nullable m

(* the "cannot match anything" model, used as the failure sink *)
let fail_model = Choice []

let rec simplify = function
  | Seq [] -> Opt fail_model (* epsilon: matches only the empty sequence *)
  | Seq [ m ] -> simplify m
  | Seq l when List.exists (fun m -> m = Choice []) l -> fail_model
  | Choice [ m ] -> simplify m
  | m -> m

let rec deriv m sym =
  match m with
  | Elem_name n -> if n = sym then Seq [] else fail_model
  | Choice l -> simplify (Choice (List.map (fun m -> deriv m sym) l))
  | Seq [] -> fail_model
  | Seq (first :: rest) ->
      let d_first = simplify (Seq (deriv first sym :: rest)) in
      if nullable first then simplify (Choice [ d_first; deriv (Seq rest) sym ]) else d_first
  | Opt m -> deriv m sym
  | Star m' -> simplify (Seq [ deriv m' sym; Star m' ])
  | Plus m' -> simplify (Seq [ deriv m' sym; Star m' ])

let matches model syms =
  let final = List.fold_left (fun m sym -> simplify (deriv m sym)) model syms in
  nullable final

type violation = {
  element : string;
  message : string;
}

let validate t tree =
  let violations = ref [] in
  let report element fmt =
    Printf.ksprintf (fun message -> violations := { element; message } :: !violations) fmt
  in
  let strict = t.elements <> [] in
  let rec check = function
    | Tree.Text _ -> ()
    | Tree.Element e ->
        let name = e.Tree.name in
        (* attributes *)
        let defs = attributes t name in
        List.iter
          (fun d ->
            let value = List.assoc_opt d.att_name e.Tree.attrs in
            (match (d.att_default, value) with
            | Required, None -> report name "missing required attribute %s" d.att_name
            | Fixed fixed, Some v when v <> fixed ->
                report name "attribute %s must be fixed to %S, found %S" d.att_name fixed v
            | _ -> ());
            match (d.att_type, value) with
            | Enum allowed, Some v when not (List.mem v allowed) ->
                report name "attribute %s value %S not in {%s}" d.att_name v
                  (String.concat ", " allowed)
            | _ -> ())
          defs;
        (* content *)
        let child_elems =
          List.filter_map
            (function Tree.Element c -> Some c.Tree.name | Tree.Text _ -> None)
            e.Tree.children
        in
        let has_text =
          List.exists
            (function
              | Tree.Text s -> not (String.for_all is_ws s)
              | Tree.Element _ -> false)
            e.Tree.children
        in
        (match content_model t name with
        | None -> if strict then report name "element %s is not declared" name
        | Some Empty ->
            if e.Tree.children <> [] then report name "element %s must be EMPTY" name
        | Some Any -> ()
        | Some (Mixed allowed) ->
            List.iter
              (fun cn ->
                if not (List.mem cn allowed) then
                  report name "element %s not allowed in mixed content of %s" cn name)
              child_elems
        | Some (Children model) ->
            if has_text then report name "text not allowed inside %s" name;
            if not (matches model child_elems) then
              report name "children (%s) do not match the content model of %s"
                (String.concat ", " child_elems) name);
        List.iter check e.Tree.children
  in
  check tree;
  List.rev !violations

let rec pp_model ppf = function
  | Elem_name n -> Format.pp_print_string ppf n
  | Seq l ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_model)
        l
  | Choice l ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ") pp_model)
        l
  | Opt m -> Format.fprintf ppf "%a?" pp_model m
  | Star m -> Format.fprintf ppf "%a*" pp_model m
  | Plus m -> Format.fprintf ppf "%a+" pp_model m

let pp_content ppf = function
  | Empty -> Format.pp_print_string ppf "EMPTY"
  | Any -> Format.pp_print_string ppf "ANY"
  | Mixed [] -> Format.pp_print_string ppf "(#PCDATA)"
  | Mixed l -> Format.fprintf ppf "(#PCDATA | %s)*" (String.concat " | " l)
  | Children m -> pp_model ppf m
