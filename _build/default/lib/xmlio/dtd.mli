(** Document Type Definitions.

    §3.2 of the paper notes that "the availability of a DTD can greatly
    simplify" the string-to-integer compaction, since every tag and
    attribute name is known up front.  This module parses the internal
    subset of a DOCTYPE declaration — [<!ELEMENT ...>] content models and
    [<!ATTLIST ...>] declarations — well enough to:

    - {!preload} a {!Dict.t} with all declared names, so dictionary ids
      are stable and assigned before any data is scanned;
    - {!validate} documents against content models and attribute
      declarations (matching is by Brzozowski derivatives of the model).

    Parameter entities and external subsets are not supported (the
    paper's data model has no use for them). *)

(** Element content models. *)
type model =
  | Elem_name of string
  | Seq of model list     (** [(a, b, c)] *)
  | Choice of model list  (** [(a | b | c)] *)
  | Opt of model          (** [m?] *)
  | Star of model         (** [m*] *)
  | Plus of model         (** [m+] *)

type content =
  | Empty                 (** [EMPTY] *)
  | Any                   (** [ANY] *)
  | Mixed of string list  (** [(#PCDATA | a | b)*]; the list may be empty *)
  | Children of model

type att_type =
  | Cdata
  | Id
  | Idref
  | Nmtoken
  | Enum of string list

type att_default =
  | Required
  | Implied
  | Fixed of string
  | Default of string

type att_def = {
  att_name : string;
  att_type : att_type;
  att_default : att_default;
}

type t

exception Syntax_error of string
(** Raised by {!parse} on malformed declarations. *)

val parse : string -> t
(** Parse the text of an internal subset (the part between [\[] and [\]]
    of a DOCTYPE), i.e. a sequence of ELEMENT/ATTLIST declarations and
    comments. *)

val empty : t

val element_names : t -> string list
(** Declared element names, in declaration order. *)

val content_model : t -> string -> content option

val attributes : t -> string -> att_def list
(** Declared attributes of an element ([] when none). *)

val names : t -> string list
(** Every name a document using this DTD can contain: element names and
    attribute names, in first-declaration order — the preload order for
    dictionaries. *)

val preload : t -> Dict.t -> unit
(** Intern all {!names} into the dictionary (the §3.2 simplification). *)

(** {1 Validation} *)

type violation = {
  element : string;  (** element where the violation was found *)
  message : string;
}

val validate : t -> Tree.t -> violation list
(** All violations found in the document: undeclared elements (only when
    the DTD declares at least one element), children sequences not
    matching the content model, text where the model forbids it, missing
    REQUIRED attributes, values outside an enumeration, and FIXED
    attribute mismatches.  Empty list = valid. *)

val pp_content : Format.formatter -> content -> unit
