(** Streaming XML serializer.

    Consumes {!Event.t}s and emits well-formed XML text to a pluggable
    sink — a [Buffer.t] or a {!Extmem.Block_writer.t}, so writing the
    output document costs exactly [ceil(n/B)] block writes.  Round-trips
    with {!Parser}: [parse (write events) = events] for any balanced
    event sequence. *)

type t

val to_buffer : ?decl:bool -> ?indent:bool -> Buffer.t -> t
(** Serialize into a buffer.  [decl] (default false) emits an XML
    declaration first; [indent] (default false) pretty-prints with
    2-space indentation (only safe for documents without mixed
    content). *)

val to_block_writer : ?decl:bool -> ?indent:bool -> Extmem.Block_writer.t -> t

val to_fn : ?decl:bool -> ?indent:bool -> (string -> unit) -> t

val event : t -> Event.t -> unit
(** Emit one event.  @raise Invalid_argument on events that would produce
    malformed XML (unbalanced end tag, text outside the root). *)

val events : t -> Event.t list -> unit

val close : t -> unit
(** Check balance.  @raise Invalid_argument if elements remain open. *)

val events_to_string : ?decl:bool -> ?indent:bool -> Event.t list -> string
(** One-shot convenience. *)
