(** In-memory document trees (the DOM-style representation).

    Used by the internal-memory recursive sort baseline, by the subtree
    sorter for subtrees that fit in memory, and by tests as the reference
    model.  Construction from and flattening to event streams are inverse
    up to whitespace handling. *)

type t =
  | Element of element
  | Text of string

and element = {
  name : string;
  attrs : Event.attr list;
  children : t list;
}

val element : ?attrs:Event.attr list -> string -> t list -> t
(** Convenience constructor. *)

val text : string -> t

exception Malformed of string
(** Raised by the [of_*] constructors on unbalanced event streams. *)

val of_events : Event.t list -> t
(** Build the tree of the single root element of the stream. *)

val of_parser : Parser.t -> t
(** Drain a parser into a tree.  @raise Parser.Error on malformed XML. *)

val of_string : ?keep_whitespace:bool -> string -> t

val to_events : t -> Event.t list

val to_string : ?decl:bool -> ?indent:bool -> t -> string

val equal : t -> t -> bool

val size : t -> int
(** Number of nodes (elements and text nodes), the paper's [N]. *)

val element_count : t -> int
(** Number of element nodes only. *)

val height : t -> int
(** Levels of elements: a single element is height 1; text nodes do not
    add a level. *)

val max_fanout : t -> int
(** Maximum number of children (elements and text nodes) over all
    elements, the paper's [k]. *)

val map_children : (element -> t list) -> t -> t
(** Rebuild the tree bottom-up, replacing every element's child list with
    the function's result (applied to the element whose children have
    already been rewritten). *)

val fold : ('acc -> t -> 'acc) -> 'acc -> t -> 'acc
(** Pre-order fold over all nodes. *)

val pp : Format.formatter -> t -> unit
