type stats = {
  records : int;
  bytes : int;
  initial_runs : int;
  merge_passes : int;
}

type run_formation =
  [ `Load_sort
  | `Replacement_selection
  ]

(* Per-record arena overhead: OCaml string header + container slot,
   approximated as two words.  The exact constant only shifts where runs
   are cut. *)
let record_overhead = 16

let sorted_run_input reader () = Extmem.Block_reader.read_record reader

let write_run store records =
  let w = Extmem.Run_store.begin_run store in
  Extmem.Vec.iter (Extmem.Block_writer.write_record w) records;
  Extmem.Run_store.finish_run store w

(* ---- run formation: load, sort, store ---- *)

(* Returns [Ok run_ids] after spilling, or [Error sorted_records] when the
   whole input fit in the arena (no temp I/O at all). *)
let load_sort_runs ~arena_capacity ~store ~cmp ~input ~count =
  let arena = Extmem.Vec.create () in
  let arena_bytes = ref 0 in
  let run_ids = ref [] in
  let flush () =
    if not (Extmem.Vec.is_empty arena) then begin
      Extmem.Vec.sort cmp arena;
      run_ids := write_run store arena :: !run_ids;
      Extmem.Vec.clear arena;
      arena_bytes := 0
    end
  in
  let rec fill () =
    match input () with
    | None -> ()
    | Some r ->
        count r;
        let sz = String.length r + record_overhead in
        if !arena_bytes + sz > arena_capacity && not (Extmem.Vec.is_empty arena) then flush ();
        Extmem.Vec.push arena r;
        arena_bytes := !arena_bytes + sz;
        fill ()
  in
  fill ();
  if !run_ids = [] then begin
    Extmem.Vec.sort cmp arena;
    Error arena
  end
  else begin
    flush ();
    Ok (List.rev !run_ids)
  end

(* ---- run formation: replacement selection ----

   The classic heap-based scheme: pop the smallest record into the current
   run; an incoming record joins the current run's heap if it is not
   smaller than the last record written, otherwise it waits (still in
   memory) for the next run.  On random input runs come out about twice
   the arena size, halving the run count and often saving a merge pass. *)
let replacement_selection_runs ~arena_capacity ~store ~cmp ~input ~count =
  let less a b = cmp a b < 0 in
  let current = Heap.create ~less in
  let pending = Extmem.Vec.create () in
  let in_memory = ref 0 in
  let size_of r = String.length r + record_overhead in
  let exhausted = ref false in
  let read () =
    match input () with
    | None ->
        exhausted := true;
        None
    | Some r ->
        count r;
        Some r
  in
  (* prime the heap *)
  let rec prime () =
    if !in_memory < arena_capacity && not !exhausted then begin
      match read () with
      | Some r ->
          Heap.push current r;
          in_memory := !in_memory + size_of r;
          prime ()
      | None -> ()
    end
  in
  prime ();
  if !exhausted then Error current (* everything fits: drain the heap *)
  else begin
    let run_ids = ref [] in
    while Heap.length current > 0 do
      let w = Extmem.Run_store.begin_run store in
      let rec produce () =
        if Heap.length current > 0 then begin
          let m = Heap.pop current in
          Extmem.Block_writer.write_record w m;
          in_memory := !in_memory - size_of m;
          (* refill while there is room *)
          let rec refill () =
            if !in_memory < arena_capacity && not !exhausted then begin
              match read () with
              | Some r ->
                  in_memory := !in_memory + size_of r;
                  if cmp r m >= 0 then Heap.push current r else Extmem.Vec.push pending r;
                  refill ()
              | None -> ()
            end
          in
          refill ();
          produce ()
        end
      in
      produce ();
      run_ids := Extmem.Run_store.finish_run store w :: !run_ids;
      (* the pending records seed the next run *)
      Extmem.Vec.iter (Heap.push current) pending;
      Extmem.Vec.clear pending
    done;
    Ok (List.rev !run_ids)
  end

(* ---- merging ---- *)

let merge_phases ~store ~fan_in ~cmp ~output runs =
  let open_inputs ids =
    Array.of_list (List.map (fun id -> sorted_run_input (Extmem.Run_store.open_run store id)) ids)
  in
  let rec batches = function
    | [] -> []
    | ids ->
        let rec take k acc = function
          | rest when k = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | id :: rest -> take (k - 1) (id :: acc) rest
        in
        let batch, rest = take fan_in [] ids in
        batch :: batches rest
  in
  let rec passes runs n =
    if List.length runs <= fan_in then begin
      Multiway.merge ~cmp ~inputs:(open_inputs runs) ~output;
      n + 1
    end
    else begin
      let next_runs =
        List.map
          (fun batch ->
            let w = Extmem.Run_store.begin_run store in
            Multiway.merge ~cmp ~inputs:(open_inputs batch)
              ~output:(Extmem.Block_writer.write_record w);
            Extmem.Run_store.finish_run store w)
          (batches runs)
      in
      passes next_runs (n + 1)
    end
  in
  passes runs 0

(* ---- driver ---- *)

let sort ?(run_formation = `Load_sort) ~budget ~temp ~cmp ~input ~output () =
  let bs = Extmem.Memory_budget.block_size budget in
  let blocks = Extmem.Memory_budget.available_blocks budget in
  if blocks < 3 then
    raise
      (Extmem.Memory_budget.Exhausted
         (Printf.sprintf "external sort needs >= 3 blocks, has %d" blocks));
  Extmem.Memory_budget.with_reserved budget ~who:"external sort" blocks @@ fun () ->
  (* one block is the stream buffer of the run writer / output;
     the rest is the arena during run formation *)
  let arena_capacity = (blocks - 1) * bs in
  let store = Extmem.Run_store.create temp in
  let records = ref 0 in
  let total_bytes = ref 0 in
  let count r =
    incr records;
    total_bytes := !total_bytes + String.length r
  in
  let finish initial_runs merge_passes =
    { records = !records; bytes = !total_bytes; initial_runs; merge_passes }
  in
  match run_formation with
  | `Load_sort -> (
      match load_sort_runs ~arena_capacity ~store ~cmp ~input ~count with
      | Error arena ->
          Extmem.Vec.iter output arena;
          finish 0 0
      | Ok runs ->
          let fan_in = blocks - 1 in
          let merge_passes = merge_phases ~store ~fan_in ~cmp ~output runs in
          finish (List.length runs) merge_passes)
  | `Replacement_selection -> (
      match replacement_selection_runs ~arena_capacity ~store ~cmp ~input ~count with
      | Error heap ->
          while Heap.length heap > 0 do
            output (Heap.pop heap)
          done;
          finish 0 0
      | Ok runs ->
          let fan_in = blocks - 1 in
          let merge_passes = merge_phases ~store ~fan_in ~cmp ~output runs in
          finish (List.length runs) merge_passes)
