(** K-way merging of sorted streams.

    The merge step of external merge sort: given [k] streams that are each
    sorted under [cmp], produce their sorted union.  Implemented with a
    binary tournament heap, so each output record costs O(log k)
    comparisons and no I/O beyond what the input streams themselves do
    (one buffer block per stream when they are {!Extmem.Block_reader}s).

    The merge is stable across streams: on equal records, the stream with
    the smaller index wins. *)

val merge :
  cmp:(string -> string -> int) ->
  inputs:(unit -> string option) array ->
  output:(string -> unit) ->
  unit
(** [merge ~cmp ~inputs ~output] drains all input streams into [output]
    in sorted order.  Streams must individually be sorted under [cmp];
    this is not checked. *)

val merge_list :
  cmp:(string -> string -> int) ->
  inputs:(unit -> string option) list ->
  output:(string -> unit) ->
  unit
