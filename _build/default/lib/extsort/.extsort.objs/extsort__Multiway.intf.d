lib/extsort/multiway.mli:
