lib/extsort/heap.mli:
