lib/extsort/external_sort.mli: Extmem
