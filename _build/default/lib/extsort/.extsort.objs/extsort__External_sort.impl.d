lib/extsort/external_sort.ml: Array Extmem Heap List Multiway Printf String
