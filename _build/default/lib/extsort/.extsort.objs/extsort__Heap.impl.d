lib/extsort/heap.ml: Array
