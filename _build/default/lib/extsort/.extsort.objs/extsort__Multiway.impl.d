lib/extsort/multiway.ml: Array Heap
