let merge ~cmp ~inputs ~output =
  let less (ra, ia) (rb, ib) =
    let c = cmp ra rb in
    if c <> 0 then c < 0 else ia < ib
  in
  let h = Heap.create ~less in
  Array.iteri
    (fun i next ->
      match next () with
      | Some r -> Heap.push h (r, i)
      | None -> ())
    inputs;
  while not (Heap.is_empty h) do
    let r, i = Heap.pop h in
    output r;
    match inputs.(i) () with
    | Some r' -> Heap.push h (r', i)
    | None -> ()
  done

let merge_list ~cmp ~inputs ~output = merge ~cmp ~inputs:(Array.of_list inputs) ~output
