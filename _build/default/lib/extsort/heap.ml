type 'a t = {
  less : 'a -> 'a -> bool;
  mutable data : 'a array;
  mutable len : int;
}

let create ~less = { less; data = [||]; len = 0 }

let length h = h.len

let is_empty h = h.len = 0

let swap h i j =
  let t = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.len && h.less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.len = Array.length h.data then begin
    let data = Array.make (max 4 (2 * h.len)) x in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then invalid_arg "Heap.pop: empty";
  let top = h.data.(0) in
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end;
  top

let peek h =
  if h.len = 0 then invalid_arg "Heap.peek: empty";
  h.data.(0)

let clear h = h.len <- 0
