(** Binary min-heaps with a caller-supplied strict order.

    Shared by the k-way merge (tournament over run heads) and
    replacement-selection run formation. *)

type 'a t

val create : less:('a -> 'a -> bool) -> 'a t
(** [less a b] must be a strict weak order ("a before b"). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Remove and return the minimum.  @raise Invalid_argument when empty. *)

val peek : 'a t -> 'a
(** The minimum without removing it.  @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
