(** XSort-style one-level sorting (§2, Avila-Campillo et al. [7]).

    The related-work comparison point: XSort (from the XMLTK toolkit)
    traverses the document to user-specified {e target} elements and sorts
    {e their} immediate children only — child subtrees are not sorted
    recursively.  It is implemented, as the original was, on standard
    external merge sort.  The hierarchical structure of XML is irrelevant
    to it because sorting happens on one level at a time.

    As the paper notes, XSort "sorts less, and should complete in less
    time than NEXSORT", but its output does not support single-pass
    structural merge (the `benchmark xsort` experiment quantifies
    exactly that trade-off).

    Implementation: one streaming pass; inside a target element, each
    child subtree is spooled as a record keyed by its sort key and
    document position, the records are sorted with
    {!Extsort.External_sort} (so target element child lists larger than
    memory still work), and written back in sorted order.  Everything
    outside target elements streams through untouched.  Nested targets
    are handled innermost-first via a recursion on the spooled
    subtrees. *)

type report = {
  targets_sorted : int;    (** target elements whose children were sorted *)
  children_sorted : int;   (** total child subtrees reordered *)
  spilled_sorts : int;     (** target sorts that exceeded memory and used
                               the external sorter's temp device *)
  input_io : Extmem.Io_stats.t;
  temp_io : Extmem.Io_stats.t;
  output_io : Extmem.Io_stats.t;
  total_io : Extmem.Io_stats.t;
  wall_seconds : float;
}

val sort_device :
  ?config:Nexsort.Config.t ->
  ?selector:Xmlio.Xpath.t ->
  ordering:Nexsort.Ordering.t ->
  targets:string list ->
  input:Extmem.Device.t ->
  output:Extmem.Device.t ->
  unit ->
  report
(** Sort the children of every target element under the (scan-evaluable)
    ordering.  Targets are the elements whose tag is in [targets], or —
    when [selector] is given, as in the original XMLTK tool — the
    elements matched by the path expression (positional predicates are
    rejected: streaming selection has no sibling counts).
    @raise Invalid_argument on subtree orderings or when neither targets
    nor a selector designate anything. *)

val sort_string :
  ?config:Nexsort.Config.t ->
  ?selector:Xmlio.Xpath.t ->
  ordering:Nexsort.Ordering.t ->
  targets:string list ->
  string ->
  string * report
