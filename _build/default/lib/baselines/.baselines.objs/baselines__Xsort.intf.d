lib/baselines/xsort.mli: Extmem Nexsort Xmlio
