lib/baselines/tree_sort.ml: List Nexsort Xmlio
