lib/baselines/xsort.ml: Buffer Extmem Extsort List Nexsort Option Printf Unix Xmlio
