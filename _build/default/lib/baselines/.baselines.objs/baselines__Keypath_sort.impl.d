lib/baselines/keypath_sort.ml: Extmem Extsort List Nexsort Option Printf String Unix Xmlio
