lib/baselines/tree_sort.mli: Nexsort Xmlio
