lib/baselines/keypath_sort.mli: Extmem Nexsort
