(** Internal-memory recursive sort (§1, first strawman).

    Read the whole document into a DOM-style tree, recursively sort every
    element's child list, serialize.  Takes full advantage of the
    structure but assumes the document fits in internal memory — the
    paper's motivation for NEXSORT.  Here it doubles as the correctness
    oracle for the external algorithms. *)

val sort_tree : ?depth_limit:int -> Nexsort.Ordering.t -> Xmlio.Tree.t -> Xmlio.Tree.t
(** Recursively order every element's children by [(key, document
    position)] under the given ordering; with [depth_limit], only the
    child lists of elements at level <= d (root = 1). *)

val sort_string : ?depth_limit:int -> ?keep_whitespace:bool -> Nexsort.Ordering.t -> string -> string
(** Parse, sort, serialize. *)

val sorted : ?depth_limit:int -> Nexsort.Ordering.t -> Xmlio.Tree.t -> bool
(** Check the full-sortedness invariant: every element's children are in
    [(key, position)] order.  Positions are assigned in document order of
    the tree being checked, so this checks {e local} orderedness: each
    sibling list is non-decreasing in key. *)
