module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

let compare_pairs (ka, pa) (kb, pb) =
  let c = Key.compare ka kb in
  if c <> 0 then c else compare pa pb

let sort_tree ?depth_limit ordering tree =
  let counter = ref 0 in
  (* positions are assigned in document order, mirroring the external
     algorithms' scan, so key ties break identically *)
  let rec go level node =
    incr counter;
    let pos = !counter in
    match node with
    | Xmlio.Tree.Text _ -> (node, Key.Null, pos)
    | Xmlio.Tree.Element e ->
        let key = Ordering.key_of_tree ordering e in
        let children = List.map (go (level + 1)) e.Xmlio.Tree.children in
        let sort_here =
          match depth_limit with
          | None -> true
          | Some d -> level <= d
        in
        let children =
          if sort_here then
            List.sort (fun (_, ka, pa) (_, kb, pb) -> compare_pairs (ka, pa) (kb, pb)) children
          else children
        in
        ( Xmlio.Tree.Element { e with Xmlio.Tree.children = List.map (fun (n, _, _) -> n) children },
          key,
          pos )
  in
  let sorted, _, _ = go 1 tree in
  sorted

let sort_string ?depth_limit ?keep_whitespace ordering s =
  Xmlio.Tree.to_string (sort_tree ?depth_limit ordering (Xmlio.Tree.of_string ?keep_whitespace s))

let sorted ?depth_limit ordering tree =
  let ok = ref true in
  let rec go level node =
    match node with
    | Xmlio.Tree.Text _ -> Key.Null
    | Xmlio.Tree.Element e ->
        let key = Ordering.key_of_tree ordering e in
        let child_keys = List.map (go (level + 1)) e.Xmlio.Tree.children in
        let check_here =
          match depth_limit with
          | None -> true
          | Some d -> level <= d
        in
        if check_here then begin
          let rec ordered = function
            | ka :: (kb :: _ as rest) ->
                if Key.compare ka kb > 0 then ok := false;
                ordered rest
            | [ _ ] | [] -> ()
          in
          ordered child_keys
        end;
        key
  in
  ignore (go 1 tree);
  !ok
