exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let put_varint buf n =
  if n < 0 then invalid_arg "Codec.put_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let put_zigzag buf n =
  let z = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1 in
  put_varint buf z

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_u8 buf n = Buffer.add_char buf (Char.chr (n land 0xff))

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let put_f64 buf f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
  done

type cursor = {
  buf : string;
  mutable pos : int;
}

let cursor ?(pos = 0) buf = { buf; pos }

let at_end c = c.pos >= String.length c.buf

let need c n =
  if c.pos + n > String.length c.buf then
    corrupt "Codec: truncated input (need %d bytes at %d, have %d)" n c.pos (String.length c.buf)

let get_u8 c =
  need c 1;
  let b = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  b

let get_varint c =
  let rec go shift acc =
    if shift > 62 then corrupt "Codec: varint too long";
    let b = get_u8 c in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_zigzag c =
  let z = get_varint c in
  if z land 1 = 0 then z lsr 1 else -((z + 1) lsr 1)

let get_string c =
  let n = get_varint c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_u32 c =
  need c 4;
  let b i = Char.code c.buf.[c.pos + i] in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  v

let get_f64 c =
  need c 8;
  let bits = ref 0L in
  for i = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (Char.code c.buf.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  Int64.float_of_bits !bits

let set_u32_at b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let get_u32_at s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
