(** Block-I/O accounting.

    The paper's primary performance metric is the number of block I/Os
    ("disk accesses").  Every {!Device.t} owns an [Io_stats.t]; every block
    read and write increments it.  Stats are plain mutable counters so they
    can be snapshotted and diffed around a phase of an algorithm. *)

type t = {
  mutable reads : int;   (** number of blocks read from the device *)
  mutable writes : int;  (** number of blocks written to the device *)
}

val create : unit -> t
(** Fresh zeroed counters. *)

val record_read : t -> unit
val record_write : t -> unit

val total : t -> int
(** [total s] is [s.reads + s.writes]. *)

val reset : t -> unit

val snapshot : t -> t
(** An independent copy of the current counter values. *)

val diff : t -> t -> t
(** [diff now before] is the component-wise difference, i.e. the I/Os that
    happened between the [before] snapshot and [now]. *)

val add : t -> t -> t
(** Component-wise sum (functional; inputs unchanged). *)

val accumulate : into:t -> t -> unit
(** [accumulate ~into s] adds [s]'s counters into [into]. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["{reads=<r>; writes=<w>; total=<t>}"]. *)

val to_string : t -> string
