(** Double-ended queues over a growable ring buffer.

    Used by {!Ext_stack} to hold the resident window of stack blocks: blocks
    are appended at the back as the stack grows, evicted from the front when
    the window exceeds its budget, and re-inserted at the front when a pop
    needs an evicted block again.  All operations are amortised O(1). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
val push_front : 'a t -> 'a -> unit

val pop_back : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val pop_front : 'a t -> 'a
(** @raise Invalid_argument on an empty deque. *)

val peek_back : 'a t -> 'a
val peek_front : 'a t -> 'a

val get : 'a t -> int -> 'a
(** [get d i] is the [i]-th element counting from the front.
    @raise Invalid_argument if out of bounds. *)

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
