(** Low-level binary codecs shared by the substrate and the sorters.

    Records on the external stacks, in sorted runs and in merge-sort
    temporaries are framed with these primitives: LEB128-style varints for
    small integers and length-prefixed byte strings.  Encoding appends to a
    [Buffer.t]; decoding reads from a [string] through a mutable cursor. *)

(** {1 Encoding} *)

val put_varint : Buffer.t -> int -> unit
(** Append a non-negative integer as a LEB128 varint (7 bits per byte,
    high bit = continuation).  @raise Invalid_argument on negatives. *)

val put_zigzag : Buffer.t -> int -> unit
(** Append a possibly-negative integer using zigzag + varint coding. *)

val put_string : Buffer.t -> string -> unit
(** Append a varint length followed by the raw bytes. *)

val put_u8 : Buffer.t -> int -> unit
(** Append one byte (the low 8 bits of the argument). *)

val put_u32 : Buffer.t -> int -> unit
(** Append a fixed-width 32-bit little-endian unsigned integer. *)

val put_f64 : Buffer.t -> float -> unit
(** Append a fixed-width IEEE-754 double, little-endian. *)

(** {1 Decoding} *)

type cursor = {
  buf : string;
  mutable pos : int;
}
(** A read cursor over an immutable string. *)

exception Corrupt of string
(** Raised by all [get_*] functions on truncated or malformed input. *)

val cursor : ?pos:int -> string -> cursor

val at_end : cursor -> bool
(** True when the cursor has consumed the whole string. *)

val get_varint : cursor -> int
val get_zigzag : cursor -> int
val get_string : cursor -> string
val get_u8 : cursor -> int
val get_u32 : cursor -> int
val get_f64 : cursor -> float

(** {1 Fixed-width access into [bytes]} *)

val set_u32_at : bytes -> int -> int -> unit
(** [set_u32_at b off v] stores [v] as 32-bit LE at offset [off]. *)

val get_u32_at : string -> int -> int
(** [get_u32_at s off] reads a 32-bit LE unsigned integer at [off]. *)
