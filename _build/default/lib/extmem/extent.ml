type t = {
  first_block : int;
  blocks : int;
  bytes : int;
}

let empty = { first_block = 0; blocks = 0; bytes = 0 }

let pp ppf e =
  Format.fprintf ppf "{first=%d; blocks=%d; bytes=%d}" e.first_block e.blocks e.bytes
