type t = {
  total : int;
  bs : int;
  mutable used : int;
}

exception Exhausted of string

let create ~blocks ~block_size =
  if blocks < 1 then invalid_arg "Memory_budget.create: need at least one block";
  if block_size < 1 then invalid_arg "Memory_budget.create: block_size must be positive";
  { total = blocks; bs = block_size; used = 0 }

let block_size b = b.bs

let total_blocks b = b.total

let used_blocks b = b.used

let available_blocks b = b.total - b.used

let available_bytes b = available_blocks b * b.bs

let reserve b ~who n =
  if n < 0 then invalid_arg "Memory_budget.reserve: negative";
  if b.used + n > b.total then
    raise
      (Exhausted
         (Printf.sprintf "%s needs %d blocks but only %d of %d are free" who n
            (available_blocks b) b.total));
  b.used <- b.used + n

let release b n =
  if n < 0 || n > b.used then invalid_arg "Memory_budget.release: bad count";
  b.used <- b.used - n

let with_reserved b ~who n f =
  reserve b ~who n;
  Fun.protect ~finally:(fun () -> release b n) f
