lib/extmem/block_writer.mli: Device Extent
