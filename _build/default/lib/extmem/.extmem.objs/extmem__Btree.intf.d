lib/extmem/btree.mli: Device Pager
