lib/extmem/deque.mli:
