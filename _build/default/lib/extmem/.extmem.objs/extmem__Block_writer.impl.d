lib/extmem/block_writer.ml: Buffer Bytes Codec Device Extent String
