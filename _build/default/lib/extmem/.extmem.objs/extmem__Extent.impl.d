lib/extmem/extent.ml: Format
