lib/extmem/pager.ml: Array Bytes Device Hashtbl Printf String
