lib/extmem/run_store.mli: Block_reader Block_writer Device Extent
