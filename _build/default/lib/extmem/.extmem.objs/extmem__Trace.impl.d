lib/extmem/trace.ml: Device Format Vec
