lib/extmem/deque.ml: Array List
