lib/extmem/vec.ml: Array List Printf
