lib/extmem/btree.ml: Buffer Codec Device List Pager Printf String
