lib/extmem/memory_budget.ml: Fun Printf
