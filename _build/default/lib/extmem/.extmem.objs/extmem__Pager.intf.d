lib/extmem/pager.mli: Device
