lib/extmem/device.mli: Io_stats
