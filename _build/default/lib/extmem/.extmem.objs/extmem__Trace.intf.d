lib/extmem/trace.mli: Device Format
