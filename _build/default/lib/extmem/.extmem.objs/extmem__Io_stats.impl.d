lib/extmem/io_stats.ml: Format
