lib/extmem/block_reader.mli: Device Extent
