lib/extmem/ext_stack.ml: Buffer Bytes Char Codec Deque Device String
