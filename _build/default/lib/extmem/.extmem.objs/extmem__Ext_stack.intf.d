lib/extmem/ext_stack.mli: Device Io_stats
