lib/extmem/codec.mli: Buffer
