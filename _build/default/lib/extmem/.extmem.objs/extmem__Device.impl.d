lib/extmem/device.ml: Bytes Io_stats Option Printf String Unix Vec
