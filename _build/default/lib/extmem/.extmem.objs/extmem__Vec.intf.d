lib/extmem/vec.mli:
