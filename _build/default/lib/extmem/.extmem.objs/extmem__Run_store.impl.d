lib/extmem/run_store.ml: Block_reader Block_writer Device Extent Printf Vec
