lib/extmem/io_stats.mli: Format
