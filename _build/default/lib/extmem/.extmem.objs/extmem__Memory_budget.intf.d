lib/extmem/memory_budget.mli:
