lib/extmem/block_reader.ml: Bytes Char Codec Device Extent
