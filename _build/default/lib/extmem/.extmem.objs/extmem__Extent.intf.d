lib/extmem/extent.mli: Format
