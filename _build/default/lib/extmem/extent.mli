(** Extents: contiguous block ranges on a device.

    An extent identifies where a stream of bytes lives on a device: the
    first block, the number of blocks, and the exact byte length (which may
    end mid-block). *)

type t = {
  first_block : int;  (** index of the first block on the device *)
  blocks : int;       (** number of consecutive blocks *)
  bytes : int;        (** exact byte length of the payload *)
}

val empty : t
(** The zero-length extent. *)

val pp : Format.formatter -> t -> unit
