type op =
  | Read
  | Write

exception Fault of op * int

type backend =
  | Mem of bytes Vec.t
  | File of Unix.file_descr

type t = {
  name : string;
  block_size : int;
  mutable blocks : int;
  mutable logical_len : int option;
  backend : backend;
  stats : Io_stats.t;
  mutable fault : (op -> int -> bool) option;
  mutable tracer : (op -> int -> unit) option;
}

let check_block_size bs = if bs <= 0 then invalid_arg "Device: block_size must be positive"

let in_memory ?(name = "mem") ~block_size () =
  check_block_size block_size;
  {
    name;
    block_size;
    blocks = 0;
    logical_len = None;
    backend = Mem (Vec.create ());
    stats = Io_stats.create ();
    fault = None;
    tracer = None;
  }

let file ?name ~block_size ~path () =
  check_block_size block_size;
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  {
    name = Option.value name ~default:path;
    block_size;
    blocks = 0;
    logical_len = None;
    backend = File fd;
    stats = Io_stats.create ();
    fault = None;
    tracer = None;
  }

let name d = d.name

let block_size d = d.block_size

let block_count d = d.blocks

let byte_length d =
  match d.logical_len with
  | Some n -> n
  | None -> d.blocks * d.block_size

let set_byte_length d n = d.logical_len <- Some n

let stats d = d.stats

let allocate d n =
  if n < 0 then invalid_arg "Device.allocate: negative count";
  let first = d.blocks in
  (match d.backend with
  | Mem v ->
      for _ = 1 to n do
        Vec.push v (Bytes.make d.block_size '\000')
      done
  | File _ -> () (* sparse: the file grows on write *));
  d.blocks <- d.blocks + n;
  first

let maybe_fault d op i =
  (match d.tracer with
  | Some trace -> trace op i
  | None -> ());
  match d.fault with
  | Some hook when hook op i -> raise (Fault (op, i))
  | Some _ | None -> ()

let read_block d i buf =
  if i < 0 || i >= d.blocks then
    invalid_arg (Printf.sprintf "Device.read_block(%s): block %d out of range [0,%d)" d.name i d.blocks);
  if Bytes.length buf < d.block_size then invalid_arg "Device.read_block: buffer too small";
  maybe_fault d Read i;
  Io_stats.record_read d.stats;
  match d.backend with
  | Mem v -> Bytes.blit (Vec.get v i) 0 buf 0 d.block_size
  | File fd ->
      let off = i * d.block_size in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let rec fill pos =
        if pos < d.block_size then begin
          let n = Unix.read fd buf pos (d.block_size - pos) in
          if n = 0 then Bytes.fill buf pos (d.block_size - pos) '\000'
          else fill (pos + n)
        end
      in
      fill 0

let write_block d i buf =
  if i < 0 || i > d.blocks then
    invalid_arg (Printf.sprintf "Device.write_block(%s): block %d out of range [0,%d]" d.name i d.blocks);
  if Bytes.length buf < d.block_size then invalid_arg "Device.write_block: buffer too small";
  if i = d.blocks then ignore (allocate d 1);
  maybe_fault d Write i;
  Io_stats.record_write d.stats;
  match d.backend with
  | Mem v -> Bytes.blit buf 0 (Vec.get v i) 0 d.block_size
  | File fd ->
      let off = i * d.block_size in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let rec drain pos =
        if pos < d.block_size then begin
          let n = Unix.write fd buf pos (d.block_size - pos) in
          drain (pos + n)
        end
      in
      drain 0

let of_string ?name ~block_size s =
  let d = in_memory ?name ~block_size () in
  let nblocks = (String.length s + block_size - 1) / block_size in
  ignore (allocate d nblocks);
  (match d.backend with
  | Mem v ->
      for i = 0 to nblocks - 1 do
        let off = i * block_size in
        let n = min block_size (String.length s - off) in
        Bytes.blit_string s off (Vec.get v i) 0 n
      done
  | File _ -> assert false);
  set_byte_length d (String.length s);
  d

let set_fault d hook = d.fault <- hook

let set_tracer d hook = d.tracer <- hook

let contents d =
  let len = byte_length d in
  let out = Bytes.create len in
  (match d.backend with
  | Mem v ->
      for i = 0 to d.blocks - 1 do
        let off = i * d.block_size in
        let n = min d.block_size (len - off) in
        if n > 0 then Bytes.blit (Vec.get v i) 0 out off n
      done
  | File fd ->
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let rec fill pos =
        if pos < len then begin
          let n = Unix.read fd out pos (len - pos) in
          if n = 0 then () (* sparse tail: leave zeroes *)
          else fill (pos + n)
        end
      in
      fill 0);
  Bytes.unsafe_to_string out

let close d =
  match d.backend with
  | Mem _ -> ()
  | File fd -> Unix.close fd
