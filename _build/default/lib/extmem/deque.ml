type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of front element when len > 0 *)
  mutable len : int;
}

let create () = { data = Array.make 8 None; head = 0; len = 0 }

let length d = d.len

let is_empty d = d.len = 0

let cap d = Array.length d.data

let grow d =
  let n = cap d in
  let data' = Array.make (n * 2) None in
  for i = 0 to d.len - 1 do
    data'.(i) <- d.data.((d.head + i) mod n)
  done;
  d.data <- data';
  d.head <- 0

let push_back d x =
  if d.len = cap d then grow d;
  d.data.((d.head + d.len) mod cap d) <- Some x;
  d.len <- d.len + 1

let push_front d x =
  if d.len = cap d then grow d;
  d.head <- (d.head - 1 + cap d) mod cap d;
  d.data.(d.head) <- Some x;
  d.len <- d.len + 1

let unwrap = function
  | Some x -> x
  | None -> assert false

let pop_back d =
  if d.len = 0 then invalid_arg "Deque.pop_back: empty";
  let i = (d.head + d.len - 1) mod cap d in
  let x = unwrap d.data.(i) in
  d.data.(i) <- None;
  d.len <- d.len - 1;
  x

let pop_front d =
  if d.len = 0 then invalid_arg "Deque.pop_front: empty";
  let x = unwrap d.data.(d.head) in
  d.data.(d.head) <- None;
  d.head <- (d.head + 1) mod cap d;
  d.len <- d.len - 1;
  x

let peek_back d =
  if d.len = 0 then invalid_arg "Deque.peek_back: empty";
  unwrap d.data.((d.head + d.len - 1) mod cap d)

let peek_front d =
  if d.len = 0 then invalid_arg "Deque.peek_front: empty";
  unwrap d.data.(d.head)

let get d i =
  if i < 0 || i >= d.len then invalid_arg "Deque.get: out of bounds";
  unwrap d.data.((d.head + i) mod cap d)

let clear d =
  Array.fill d.data 0 (cap d) None;
  d.head <- 0;
  d.len <- 0

let iter f d =
  for i = 0 to d.len - 1 do
    f (get d i)
  done

let to_list d = List.init d.len (get d)
