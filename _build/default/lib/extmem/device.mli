(** Block devices with exact I/O accounting.

    A device is a linear array of fixed-size blocks.  All data that is
    "on disk" in the sense of the external-memory model of Aggarwal and
    Vitter lives on a device; every whole-block read or write is counted in
    the device's {!Io_stats.t}.  This is the reproduction's substitute for
    TPIE: the paper uses TPIE for explicit control and detailed accounting
    of I/O operations, which is exactly what this module provides.

    Two implementations are built in: an in-memory virtual disk (fast,
    deterministic, used by tests and benchmarks) and a real file-backed
    device (used by the command-line tools to process actual files).

    Devices are append-allocated: {!allocate} extends the device and
    returns the index of the first new block.  Reading a block that was
    allocated but never written yields zeroes. *)

type t

type op =
  | Read
  | Write

exception Fault of op * int
(** Raised by the failure-injection hook (see {!set_fault}). *)

val in_memory : ?name:string -> block_size:int -> unit -> t
(** [in_memory ~block_size ()] is a fresh virtual disk.  [block_size] must
    be positive. *)

val file : ?name:string -> block_size:int -> path:string -> unit -> t
(** [file ~block_size ~path ()] opens (creating or truncating) [path] as a
    block device backed by the real file system. *)

val of_string : ?name:string -> block_size:int -> string -> t
(** [of_string ~block_size s] is an in-memory device pre-loaded with the
    bytes of [s] (zero-padded to a whole number of blocks); its byte length
    is recorded so {!byte_length} returns [String.length s].  Initial
    loading is not counted as I/O. *)

val name : t -> string
val block_size : t -> int

val block_count : t -> int
(** Number of allocated blocks. *)

val byte_length : t -> int
(** Logical byte length of the device contents, as recorded by
    {!set_byte_length} (defaults to [block_count * block_size]). *)

val set_byte_length : t -> int -> unit
(** Record the logical byte length (writers call this on [close] so readers
    know where the data ends within the last block). *)

val stats : t -> Io_stats.t
(** The device's I/O counters (live; mutated by every read/write). *)

val allocate : t -> int -> int
(** [allocate dev n] extends the device by [n] blocks and returns the index
    of the first one.  Allocation itself performs no I/O. *)

val read_block : t -> int -> bytes -> unit
(** [read_block dev i buf] reads block [i] into [buf] (which must be at
    least [block_size] long) and counts one read.
    @raise Invalid_argument if [i] is out of range. *)

val write_block : t -> int -> bytes -> unit
(** [write_block dev i buf] writes [buf]'s first [block_size] bytes to
    block [i] and counts one write.  Writing one block past the end
    auto-allocates.  @raise Invalid_argument if [i] is further out of
    range. *)

val set_fault : t -> (op -> int -> bool) option -> unit
(** Install a failure-injection hook.  Before each I/O the hook is called
    with the operation and block index; returning [true] makes the I/O
    raise {!Fault} instead of executing.  [None] removes the hook. *)

val set_tracer : t -> (op -> int -> unit) option -> unit
(** Install an observation hook called before every block I/O with the
    operation and block index (after the fault hook decides the I/O will
    happen).  Used by {!Trace} to record access patterns. *)

val contents : t -> string
(** The whole device contents as a string of {!byte_length} bytes (not
    counted as I/O; for tests and for writing final output files). *)

val close : t -> unit
(** Release OS resources (no-op for in-memory devices). *)
