(** Internal-memory accounting.

    The external-memory model gives an algorithm [M] blocks of internal
    memory; TPIE enforces this with an application memory limit.  Here
    every component that holds blocks in memory (stack windows, stream
    buffers, sort arenas, merge fan-in buffers) reserves them from a
    shared budget, so exceeding [M] is a programming error that surfaces
    immediately instead of silently inflating memory. *)

type t

exception Exhausted of string
(** Raised when a reservation would exceed the budget. *)

val create : blocks:int -> block_size:int -> t
(** A budget of [blocks] internal-memory blocks of [block_size] bytes. *)

val block_size : t -> int

val total_blocks : t -> int

val used_blocks : t -> int

val available_blocks : t -> int

val available_bytes : t -> int

val reserve : t -> who:string -> int -> unit
(** [reserve b ~who n] takes [n] blocks.  @raise Exhausted naming [who]
    when fewer than [n] blocks remain. *)

val release : t -> int -> unit
(** Give back [n] blocks.  @raise Invalid_argument when releasing more
    than is in use. *)

val with_reserved : t -> who:string -> int -> (unit -> 'a) -> 'a
(** Reserve around a scope; always released, also on exceptions. *)
