(** Resizable arrays.

    A minimal growable-array container used throughout the external-memory
    substrate (the OCaml 5.1 standard library does not yet provide
    [Dynarray]).  Elements are stored contiguously; [push] is amortised
    O(1); random access is O(1). *)

type 'a t

val create : unit -> 'a t
(** [create ()] is a fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of [n] copies of [x]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if [i] is out
    of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element.  @raise Invalid_argument if
    [i] is out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append one element at the end. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument on an
    empty vector. *)

val top : 'a t -> 'a
(** Last element without removing it.  @raise Invalid_argument on an empty
    vector. *)

val clear : 'a t -> unit
(** Remove all elements (capacity is retained). *)

val truncate : 'a t -> int -> unit
(** [truncate v n] drops elements so that only the first [n] remain.
    No-op when [n >= length v]. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)
