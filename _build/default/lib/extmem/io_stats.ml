type t = {
  mutable reads : int;
  mutable writes : int;
}

let create () = { reads = 0; writes = 0 }

let record_read s = s.reads <- s.reads + 1

let record_write s = s.writes <- s.writes + 1

let total s = s.reads + s.writes

let reset s =
  s.reads <- 0;
  s.writes <- 0

let snapshot s = { reads = s.reads; writes = s.writes }

let diff now before = { reads = now.reads - before.reads; writes = now.writes - before.writes }

let add a b = { reads = a.reads + b.reads; writes = a.writes + b.writes }

let accumulate ~into s =
  into.reads <- into.reads + s.reads;
  into.writes <- into.writes + s.writes

let pp ppf s =
  Format.fprintf ppf "{reads=%d; writes=%d; total=%d}" s.reads s.writes (total s)

let to_string s = Format.asprintf "%a" pp s
