(** Version archiving by nested merge (§2; Buneman et al., SIGMOD 2002).

    The paper cites archiving scientific data as a driving application:
    new versions of a document are merged into a single archive document
    with the {e Nested Merge} operation, "which needs to sort the input
    documents at every level" — precisely what NEXSORT provides.

    An archive is itself an XML document.  Every element carries a
    [__v] attribute listing the versions in which it was present
    ("v1,v3,v4"); when an element's direct text differs across versions,
    each distinct text is kept in a [__text __v="..."] wrapper child.
    Matching uses the same (tag, sort key) notion as {!Struct_merge}, so
    inputs are NEXSORT-sorted before merging and the archive stays fully
    sorted — each new version merges in one recursive pass.

    Any snapshot can be reconstructed exactly ({!extract}), which is the
    correctness invariant the tests enforce:
    [extract v (add ... v doc ...) = sort doc].

    Requirements as in {!Struct_merge}: scan-evaluable orderings, keys
    unique among siblings.  [__v] and [__text] are reserved names. *)

type report = {
  version : string;
  elements_added : int;    (** elements first seen in this version *)
  elements_carried : int;  (** elements already in the archive and present
                               in this version *)
  text_variants : int;     (** distinct text variants stored so far *)
}

val init :
  ?config:Nexsort.Config.t ->
  ordering:Nexsort.Ordering.t ->
  version:string ->
  string ->
  string * report
(** Create a fresh archive from the first version of a document (sorting
    it in the process). *)

val add :
  ?config:Nexsort.Config.t ->
  ordering:Nexsort.Ordering.t ->
  version:string ->
  archive:string ->
  string ->
  string * report
(** Merge the next version into the archive.
    @raise Invalid_argument if [version] is already recorded or the
    document uses the reserved markers. *)

val versions : string -> string list
(** All version labels recorded in an archive, in first-use order. *)

val extract : version:string -> string -> string option
(** Reconstruct the exact (sorted) snapshot of a version; [None] when the
    archive does not know the version. *)
