module Key = Nexsort.Key
module Ordering = Nexsort.Ordering

type child =
  | Elem of { off : int; name : string; attrs : Xmlio.Event.attr list }
  | Text of { off : int; len : int }

type scanner = {
  reader : Extmem.Block_reader.t;
  mutable pos : int;
}

let scanner dev off =
  let reader = Extmem.Block_reader.of_device dev in
  Extmem.Block_reader.seek reader off;
  { reader; pos = off }

let next_char s =
  match Extmem.Block_reader.read_char s.reader with
  | Some c ->
      s.pos <- s.pos + 1;
      c
  | None -> invalid_arg "Subdoc: unexpected end of document"

let peek_char s = Extmem.Block_reader.peek_char s.reader

let fail_unsupported c =
  invalid_arg (Printf.sprintf "Subdoc: unsupported markup starting with %C" c)

let decode_value raw =
  if String.contains raw '&' then begin
    let b = Buffer.create (String.length raw) in
    let i = ref 0 in
    while !i < String.length raw do
      if raw.[!i] = '&' then begin
        let j = String.index_from raw !i ';' in
        Buffer.add_string b (Xmlio.Escape.decode_entity (String.sub raw (!i + 1) (j - !i - 1)));
        i := j + 1
      end
      else begin
        Buffer.add_char b raw.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end
  else raw

(* after '<' and the name's first char: the rest of a start tag *)
let read_start_tag s first =
  let name = Buffer.create 12 in
  Buffer.add_char name first;
  let rec name_loop () =
    match next_char s with
    | ' ' | '\t' | '\n' | '\r' -> attrs_loop []
    | '>' -> (Buffer.contents name, [], false)
    | '/' ->
        if next_char s <> '>' then invalid_arg "Subdoc: malformed tag";
        (Buffer.contents name, [], true)
    | c ->
        Buffer.add_char name c;
        name_loop ()
  and attrs_loop acc =
    match next_char s with
    | ' ' | '\t' | '\n' | '\r' -> attrs_loop acc
    | '>' -> (Buffer.contents name, List.rev acc, false)
    | '/' ->
        if next_char s <> '>' then invalid_arg "Subdoc: malformed tag";
        (Buffer.contents name, List.rev acc, true)
    | c ->
        let k = Buffer.create 8 in
        Buffer.add_char k c;
        let rec key () =
          match next_char s with
          | '=' -> ()
          | c ->
              Buffer.add_char k c;
              key ()
        in
        key ();
        let quote = next_char s in
        if quote <> '"' && quote <> '\'' then invalid_arg "Subdoc: unquoted attribute";
        let v = Buffer.create 8 in
        let rec value () =
          let c = next_char s in
          if c <> quote then begin
            Buffer.add_char v c;
            value ()
          end
        in
        value ();
        attrs_loop ((Buffer.contents k, decode_value (Buffer.contents v)) :: acc)
  in
  name_loop ()

let read_element_head s =
  if next_char s <> '<' then invalid_arg "Subdoc: expected an element";
  match next_char s with
  | ('!' | '?' | '/') as c -> fail_unsupported c
  | c -> read_start_tag s c

let parse_shallow dev off =
  let s = scanner dev off in
  let name, attrs, self_closing = read_element_head s in
  if self_closing then (name, attrs, [], s.pos)
  else begin
    let children = ref [] in
    let rec content () =
      match peek_char s with
      | None -> invalid_arg "Subdoc: unexpected end of document"
      | Some '<' -> (
          let tag_off = s.pos in
          ignore (next_char s);
          match next_char s with
          | '/' ->
              let rec to_gt () = if next_char s <> '>' then to_gt () in
              to_gt ()
          | ('!' | '?') as c -> fail_unsupported c
          | c ->
              let cname, cattrs, cself = read_start_tag s c in
              children := Elem { off = tag_off; name = cname; attrs = cattrs } :: !children;
              if not cself then skip_to_close 1;
              content ())
      | Some _ ->
          let toff = s.pos in
          let rec text () =
            match peek_char s with
            | Some '<' | None -> ()
            | Some _ ->
                ignore (next_char s);
                text ()
          in
          text ();
          children := Text { off = toff; len = s.pos - toff } :: !children;
          content ()
    and skip_to_close depth =
      if depth > 0 then
        match next_char s with
        | '<' -> (
            match next_char s with
            | '/' ->
                let rec to_gt () = if next_char s <> '>' then to_gt () in
                to_gt ();
                skip_to_close (depth - 1)
            | ('!' | '?') as c -> fail_unsupported c
            | c ->
                let _, _, cself = read_start_tag s c in
                skip_to_close (if cself then depth else depth + 1))
        | _ -> skip_to_close depth
    in
    content ();
    (name, attrs, List.rev !children, s.pos)
  end

let subtree_end dev off =
  let _, _, _, end_off = parse_shallow dev off in
  end_off

let copy_range dev ~off ~until out =
  let reader = Extmem.Block_reader.of_device dev in
  Extmem.Block_reader.seek reader off;
  let buf = Bytes.create 512 in
  let rec go remaining =
    if remaining > 0 then begin
      let n = Extmem.Block_reader.read_bytes reader buf 0 (min 512 remaining) in
      if n = 0 then invalid_arg "Subdoc: truncated copy";
      Extmem.Block_writer.write_bytes out buf 0 n;
      go (remaining - n)
    end
  in
  go (until - off)

let write_start_tag out name attrs =
  Extmem.Block_writer.write_string out "<";
  Extmem.Block_writer.write_string out name;
  List.iter
    (fun (k, v) ->
      Extmem.Block_writer.write_string out
        (Printf.sprintf " %s=\"%s\"" k (Xmlio.Escape.escape_attr v)))
    attrs;
  Extmem.Block_writer.write_string out ">"

let union_attrs left right =
  left @ List.filter (fun (k, _) -> not (List.mem_assoc k left)) right

let key_of ordering name attrs =
  match Ordering.key_of_start ordering name attrs with
  | Some k -> k
  | None -> invalid_arg "Subdoc: ordering must be scan-evaluable"

(* one sequential pass; stack of (elem_off, name, attrs, next child index,
   my index in my parent) *)
let walk dev ~on_element ~on_text =
  let s = scanner dev 0 in
  let stack = ref [] in (* (off, name, attrs, child_counter ref, parent_off, my_index) *)
  let parent_off () =
    match !stack with
    | (off, _, _, _, _, _) :: _ -> off
    | [] -> -1
  in
  let next_index () =
    match !stack with
    | (_, _, _, counter, _, _) :: _ ->
        let i = !counter in
        incr counter;
        i
    | [] -> 0
  in
  let open_element off name attrs =
    let parent = parent_off () in
    let index = next_index () in
    stack := (off, name, attrs, ref 0, parent, index) :: !stack
  in
  let close_element until =
    match !stack with
    | (off, name, attrs, _, parent, index) :: rest ->
        stack := rest;
        on_element ~parent_off:parent ~index ~name ~attrs ~off ~until
    | [] -> invalid_arg "Subdoc.walk: unbalanced document"
  in
  (* root element *)
  let root_off = s.pos in
  let name, attrs, self_closing = read_element_head s in
  open_element root_off name attrs;
  if self_closing then close_element s.pos
  else begin
    let rec go () =
      if !stack <> [] then begin
        match peek_char s with
        | None -> invalid_arg "Subdoc.walk: unexpected end of document"
        | Some '<' -> (
            let tag_off = s.pos in
            ignore (next_char s);
            match next_char s with
            | '/' ->
                let rec to_gt () = if next_char s <> '>' then to_gt () in
                to_gt ();
                close_element s.pos;
                go ()
            | ('!' | '?') as c -> fail_unsupported c
            | c ->
                let cname, cattrs, cself = read_start_tag s c in
                open_element tag_off cname cattrs;
                if cself then close_element s.pos;
                go ())
        | Some _ ->
            let toff = s.pos in
            let rec text () =
              match peek_char s with
              | Some '<' | None -> ()
              | Some _ ->
                  ignore (next_char s);
                  text ()
            in
            text ();
            on_text ~parent_off:(parent_off ()) ~index:(next_index ()) ~off:toff
              ~len:(s.pos - toff);
            go ()
      end
    in
    go ()
  end
