lib/xmerge/seqnum.mli: Nexsort
