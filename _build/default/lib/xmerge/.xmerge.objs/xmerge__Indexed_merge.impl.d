lib/xmerge/indexed_merge.ml: Array Buffer Extmem List Nexsort Printf Subdoc Unix Xmlio
