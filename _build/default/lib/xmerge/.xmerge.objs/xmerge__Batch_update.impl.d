lib/xmerge/batch_update.ml: Buffer List Nexsort String Struct_merge Xmlio
