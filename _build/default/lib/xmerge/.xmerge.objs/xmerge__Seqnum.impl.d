lib/xmerge/seqnum.ml: List Nexsort Printf Xmlio
