lib/xmerge/struct_merge.mli: Extmem Nexsort Xmlio
