lib/xmerge/subdoc.mli: Extmem Nexsort Xmlio
