lib/xmerge/indexed_merge.mli: Extmem Nexsort
