lib/xmerge/archive.ml: Hashtbl List Nexsort Option Printf String Xmlio
