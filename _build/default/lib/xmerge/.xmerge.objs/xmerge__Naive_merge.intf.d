lib/xmerge/naive_merge.mli: Extmem Nexsort
