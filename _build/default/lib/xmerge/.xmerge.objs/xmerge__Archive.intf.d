lib/xmerge/archive.mli: Nexsort
