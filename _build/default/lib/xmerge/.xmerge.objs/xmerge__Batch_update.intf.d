lib/xmerge/batch_update.mli: Nexsort Struct_merge Xmlio
