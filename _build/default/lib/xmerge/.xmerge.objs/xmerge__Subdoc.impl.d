lib/xmerge/subdoc.ml: Buffer Bytes Extmem List Nexsort Printf String Xmlio
