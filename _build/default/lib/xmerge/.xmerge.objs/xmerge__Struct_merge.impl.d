lib/xmerge/struct_merge.ml: Buffer Extmem List Nexsort Option Printf String Xmlio
