lib/xmerge/naive_merge.ml: Array Extmem List Nexsort Printf Subdoc Unix
