module Tree = Xmlio.Tree

let seq_attr = "__seq"

let annotate ?(offset = 0) doc =
  let rec go seq (node : Tree.t) =
    match node with
    | Tree.Text _ -> node
    | Tree.Element e ->
        if List.mem_assoc seq_attr e.Tree.attrs then
          invalid_arg (Printf.sprintf "Seqnum.annotate: document already uses %s" seq_attr);
        let counter = ref (offset - 1) in
        let children =
          List.map
            (fun c ->
              incr counter;
              go !counter c)
            e.Tree.children
        in
        Tree.Element
          { e with Tree.attrs = (seq_attr, string_of_int seq) :: e.Tree.attrs; children }
  in
  Tree.to_string (go offset (Tree.of_string doc))

let restore ?config doc =
  let ordering = Nexsort.Ordering.by_attr seq_attr in
  let sorted, _ = Nexsort.sort_string ?config ~ordering doc in
  let rec strip_tree (node : Tree.t) =
    match node with
    | Tree.Text _ -> node
    | Tree.Element e ->
        Tree.Element
          {
            e with
            Tree.attrs = List.remove_assoc seq_attr e.Tree.attrs;
            children = List.map strip_tree e.Tree.children;
          }
  in
  Tree.to_string (strip_tree (Tree.of_string sorted))

let strip doc =
  let rec go (node : Tree.t) =
    match node with
    | Tree.Text _ -> node
    | Tree.Element e ->
        Tree.Element
          {
            e with
            Tree.attrs = List.remove_assoc seq_attr e.Tree.attrs;
            children = List.map go e.Tree.children;
          }
  in
  Tree.to_string (go (Tree.of_string doc))
