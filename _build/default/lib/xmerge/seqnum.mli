(** Preserving document order across sort + merge (Example 1.1).

    "This approach also can be adapted to preserve the original document
    ordering (by recording an additional sequence number attribute for
    each child element and performing a final sort according to this
    sequence number)."  — §1

    {!annotate} stamps every element with a [__seq] attribute giving its
    position among its siblings; the document can then be sorted, merged
    and updated freely.  {!restore} runs one more NEXSORT under the
    sequence-number ordering and strips the attributes, recovering the
    original sibling order (for merged documents: the left input's order,
    with right-only elements after their merged siblings, since their
    sequence numbers are offset past the left's).

    Text nodes cannot carry attributes, so only {e element} order is
    restorable — text children keep the sorted documents' text-first
    placement.  This matches the paper's remark, which records sequence
    numbers "for each child element". *)

val seq_attr : string
(** The reserved attribute name (["__seq"]). *)

val annotate : ?offset:int -> string -> string
(** Stamp sequence numbers, one count per sibling list, starting at
    [offset] (default 0) — merge inputs can be given disjoint ranges so
    right-only elements land after left ones.
    @raise Invalid_argument when the document already uses [__seq]. *)

val restore : ?config:Nexsort.Config.t -> string -> string
(** Sort by sequence number (NEXSORT under [By_attr __seq]) and strip the
    annotations. *)

val strip : string -> string
(** Remove the annotations without re-ordering. *)
