module Key = Nexsort.Key
module Ordering = Nexsort.Ordering
module Tree = Xmlio.Tree

type report = {
  version : string;
  elements_added : int;
  elements_carried : int;
  text_variants : int;
}

let v_attr = "__v"

let text_elem = "__text"

let attrs_elem = "__attrs"

let is_wrapper (e : Tree.element) = e.Tree.name = text_elem || e.Tree.name = attrs_elem

let split_versions s = String.split_on_char ',' s |> List.filter (fun v -> v <> "")

let join_versions vs = String.concat "," vs

let versions_of (e : Tree.element) =
  match List.assoc_opt v_attr e.Tree.attrs with
  | Some s -> split_versions s
  | None -> []

let with_versions (e : Tree.element) vs =
  let attrs = List.remove_assoc v_attr e.Tree.attrs in
  { e with Tree.attrs = (v_attr, join_versions vs) :: attrs }

let check_no_reserved tree =
  let rec go = function
    | Tree.Text _ -> ()
    | Tree.Element e ->
        if is_wrapper e then
          invalid_arg (Printf.sprintf "Archive: %s is a reserved element name" e.Tree.name);
        if List.mem_assoc v_attr e.Tree.attrs then
          invalid_arg (Printf.sprintf "Archive: %s is a reserved attribute" v_attr);
        List.iter go e.Tree.children
  in
  go tree

(* direct text of an element, concatenated (the unit of text versioning) *)
let direct_text children =
  String.concat ""
    (List.filter_map (function Tree.Text t -> Some t | Tree.Element _ -> None) children)

let element_children children =
  List.filter_map (function Tree.Element e -> Some e | Tree.Text _ -> None) children

type counters = {
  mutable added : int;
  mutable carried : int;
}

(* Turn one (sorted) document element into archive form for [version]. *)
let rec archive_of_fresh counters version (e : Tree.element) : Tree.element =
  counters.added <- counters.added + 1;
  let text = direct_text e.Tree.children in
  let kids = element_children e.Tree.children in
  let children =
    (if text = "" then []
     else
       [ Tree.Element
           { Tree.name = text_elem; attrs = [ (v_attr, version) ]; children = [ Tree.Text text ] }
       ])
    @ List.map (fun c -> Tree.Element (archive_of_fresh counters version c)) kids
  in
  with_versions { e with Tree.children } [ version ]

(* Merge a new version of an element into its archived form.  Both child
   lists are sorted under the ordering, so this is a linear merge. *)
let rec merge_into counters ordering version (arch : Tree.element) (doc : Tree.element) :
    Tree.element =
  counters.carried <- counters.carried + 1;
  let arch_vs = versions_of arch in
  (* split the archive's children into wrappers and real elements *)
  let wrappers, arch_kids =
    List.partition is_wrapper (element_children arch.Tree.children)
  in
  let variants, attr_variants =
    List.partition (fun (c : Tree.element) -> c.Tree.name = text_elem) wrappers
  in
  (* attribute drift: when this version's attributes differ from the
     archived base, record them in an __attrs override for this version *)
  let base_attrs = List.remove_assoc v_attr arch.Tree.attrs in
  let attr_variants =
    if doc.Tree.attrs = base_attrs then attr_variants
    else begin
      let matching (w : Tree.element) =
        List.remove_assoc v_attr w.Tree.attrs = doc.Tree.attrs
      in
      if List.exists matching attr_variants then
        List.map
          (fun w -> if matching w then with_versions w (versions_of w @ [ version ]) else w)
          attr_variants
      else
        attr_variants
        @ [ with_versions { Tree.name = attrs_elem; attrs = doc.Tree.attrs; children = [] }
              [ version ] ]
    end
  in
  let doc_text = direct_text doc.Tree.children in
  let variants =
    if doc_text = "" then variants
    else begin
      let matching (v : Tree.element) = direct_text v.Tree.children = doc_text in
      if List.exists matching variants then
        List.map
          (fun v -> if matching v then with_versions v (versions_of v @ [ version ]) else v)
          variants
      else
        variants
        @ [ { Tree.name = text_elem; attrs = [ (v_attr, version) ];
              children = [ Tree.Text doc_text ] } ]
    end
  in
  let doc_kids = element_children doc.Tree.children in
  let mark (e : Tree.element) = (Ordering.key_of_tree ordering e, e.Tree.name) in
  let cmp (ka, na) (kb, nb) =
    let c = Key.compare ka kb in
    if c <> 0 then c else String.compare na nb
  in
  let rec walk arch_kids doc_kids =
    match (arch_kids, doc_kids) with
    | rest, [] -> rest
    | [], fresh -> List.map (archive_of_fresh counters version) fresh
    | a :: arest, d :: drest ->
        let c = cmp (mark a) (mark d) in
        if c < 0 then a :: walk arest doc_kids
        else if c > 0 then archive_of_fresh counters version d :: walk arch_kids drest
        else merge_into counters ordering version a d :: walk arest drest
  in
  let merged_kids = walk arch_kids doc_kids in
  let children =
    List.map (fun v -> Tree.Element v) variants
    @ List.map (fun v -> Tree.Element v) attr_variants
    @ List.map (fun e -> Tree.Element e) merged_kids
  in
  with_versions { arch with Tree.children } (arch_vs @ [ version ])

let count_variants tree =
  Tree.fold
    (fun acc n ->
      match n with
      | Tree.Element e when e.Tree.name = text_elem -> acc + 1
      | Tree.Element _ | Tree.Text _ -> acc)
    0 tree

let versions archive =
  let tree = Tree.of_string archive in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let rec go = function
    | Tree.Text _ -> ()
    | Tree.Element e ->
        List.iter note (versions_of e);
        List.iter go e.Tree.children
  in
  go tree;
  List.rev !out

let sort_doc ?config ~ordering doc =
  let sorted, _ = Nexsort.sort_string ?config ~ordering doc in
  sorted

let init ?config ~ordering ~version doc =
  let sorted = Tree.of_string (sort_doc ?config ~ordering doc) in
  check_no_reserved sorted;
  let counters = { added = 0; carried = 0 } in
  let arch =
    match sorted with
    | Tree.Element e -> Tree.Element (archive_of_fresh counters version e)
    | Tree.Text _ -> invalid_arg "Archive: document has no root element"
  in
  ( Tree.to_string arch,
    { version; elements_added = counters.added; elements_carried = 0;
      text_variants = count_variants arch } )

let add ?config ~ordering ~version ~archive doc =
  if List.mem version (versions archive) then
    invalid_arg (Printf.sprintf "Archive: version %S already recorded" version);
  let sorted = Tree.of_string (sort_doc ?config ~ordering doc) in
  check_no_reserved sorted;
  let arch_tree = Tree.of_string archive in
  let counters = { added = 0; carried = 0 } in
  let merged =
    match (arch_tree, sorted) with
    | Tree.Element a, Tree.Element d ->
        if a.Tree.name <> d.Tree.name then invalid_arg "Archive: root element mismatch";
        Tree.Element (merge_into counters ordering version a d)
    | _ -> invalid_arg "Archive: malformed archive or document"
  in
  ( Tree.to_string merged,
    { version; elements_added = counters.added; elements_carried = counters.carried;
      text_variants = count_variants merged } )

let extract ~version archive =
  let tree = Tree.of_string archive in
  if not (List.mem version (versions archive)) then None
  else begin
    let rec go (e : Tree.element) : Tree.element option =
      if not (List.mem version (versions_of e)) then None
      else begin
        let wrappers, kids = List.partition is_wrapper (element_children e.Tree.children) in
        let variants, attr_variants =
          List.partition (fun (c : Tree.element) -> c.Tree.name = text_elem) wrappers
        in
        let text =
          List.find_map
            (fun v -> if List.mem version (versions_of v) then Some (direct_text v.Tree.children) else None)
            variants
        in
        let override =
          List.find_map
            (fun (w : Tree.element) ->
              if List.mem version (versions_of w) then
                Some (List.remove_assoc v_attr w.Tree.attrs)
              else None)
            attr_variants
        in
        let children =
          (match text with
          | Some t when t <> "" -> [ Tree.Text t ]
          | Some _ | None -> [])
          @ List.filter_map (fun k -> Option.map (fun e -> Tree.Element e) (go k)) kids
        in
        let attrs =
          match override with
          | Some attrs -> attrs
          | None -> List.remove_assoc v_attr e.Tree.attrs
        in
        Some { e with Tree.attrs; children }
      end
    in
    match tree with
    | Tree.Element e -> Option.map (fun e -> Tree.to_string (Tree.Element e)) (go e)
    | Tree.Text _ -> None
  end
