type report = {
  merge : Struct_merge.report;
  deletes : int;
  replaces : int;
  unmatched_deletes : int;
}

let op_attr = "__op"

let strip_op attrs = List.filter (fun (k, _) -> k <> op_attr) attrs

let apply_events ~ordering ~base ~updates ~emit =
  let deletes = ref 0 in
  let replaces = ref 0 in
  let on_match ~left_attrs:_ ~right_attrs =
    match List.assoc_opt op_attr right_attrs with
    | Some "delete" ->
        incr deletes;
        Struct_merge.Drop
    | Some "replace" ->
        incr replaces;
        Struct_merge.Take_right
    | Some _ | None -> Struct_merge.Merge
  in
  (* Unmatched delete markers come out of the merge as insertions (outer
     join); a post-filter drops those subtrees so deleting a non-existent
     element is a no-op.  The rewrite keeps the delete marker visible to
     the filter and strips every other marker. *)
  let rewrite_attrs attrs =
    match List.assoc_opt op_attr attrs with
    | Some "delete" -> attrs
    | Some _ -> strip_op attrs
    | None -> attrs
  in
  let drop_depth = ref 0 in
  let unmatched_deletes = ref 0 in
  let filtered_emit e =
    if !drop_depth > 0 then begin
      match e with
      | Xmlio.Event.Start _ -> incr drop_depth
      | Xmlio.Event.End _ -> decr drop_depth
      | Xmlio.Event.Text _ -> ()
    end
    else
      match e with
      | Xmlio.Event.Start (_, attrs) when List.assoc_opt op_attr attrs = Some "delete" ->
          incr unmatched_deletes;
          drop_depth := 1
      | e -> emit e
  in
  let merge =
    Struct_merge.merge_events ~on_match ~rewrite_attrs ~ordering ~left:base ~right:updates
      ~emit:filtered_emit ()
  in
  { merge; deletes = !deletes; replaces = !replaces; unmatched_deletes = !unmatched_deletes }

let apply_strings ~ordering ~base ~updates =
  let pb = Xmlio.Parser.of_string base and pu = Xmlio.Parser.of_string updates in
  let buf = Buffer.create (String.length base) in
  let writer = Xmlio.Writer.to_buffer buf in
  let report =
    apply_events ~ordering
      ~base:(fun () -> Xmlio.Parser.next pb)
      ~updates:(fun () -> Xmlio.Parser.next pu)
      ~emit:(Xmlio.Writer.event writer)
  in
  Xmlio.Writer.close writer;
  (Buffer.contents buf, report)

let sort_and_apply_strings ?config ~ordering ~base ~updates () =
  let sorted_base, _ = Nexsort.sort_string ?config ~ordering base in
  let sorted_updates, _ = Nexsort.sort_string ?config ~ordering updates in
  apply_strings ~ordering ~base:sorted_base ~updates:sorted_updates
