(** Raw, offset-aware scanning of device-resident XML.

    The nested-loop merge strawmen ({!Naive_merge}, {!Indexed_merge}) need
    to jump to an element's bytes on the device and re-parse them, which
    requires byte offsets the streaming parser does not expose.  This
    scanner handles the element/attribute/text subset our workloads use
    and raises [Invalid_argument] on anything fancier (comments, PIs,
    CDATA).

    All costs are real device I/O through a sequential
    {!Extmem.Block_reader} per call — which is the point: these helpers
    make the strawmen's access patterns measurable. *)

type child =
  | Elem of { off : int; name : string; attrs : Xmlio.Event.attr list }
  | Text of { off : int; len : int }

val parse_shallow :
  Extmem.Device.t -> int -> string * Xmlio.Event.attr list * child list * int
(** [parse_shallow dev off] parses the element starting at byte [off]:
    its name, attributes, direct children (with their offsets) and the
    offset just past its end tag.  Costs one sequential scan of the whole
    subtree. *)

val subtree_end : Extmem.Device.t -> int -> int
(** The end offset of the subtree at [off] (another full scan). *)

val copy_range : Extmem.Device.t -> off:int -> until:int -> Extmem.Block_writer.t -> unit
(** Copy raw bytes [off, until) to the output stream. *)

val write_start_tag : Extmem.Block_writer.t -> string -> Xmlio.Event.attr list -> unit

val union_attrs : Xmlio.Event.attr list -> Xmlio.Event.attr list -> Xmlio.Event.attr list
(** Left-biased attribute union (same rule as {!Struct_merge}). *)

val key_of : Nexsort.Ordering.t -> string -> Xmlio.Event.attr list -> Nexsort.Key.t
(** Scan-evaluable key of a start tag.
    @raise Invalid_argument on subtree criteria. *)

val walk :
  Extmem.Device.t ->
  on_element:(parent_off:int -> index:int -> name:string -> attrs:Xmlio.Event.attr list ->
              off:int -> until:int -> unit) ->
  on_text:(parent_off:int -> index:int -> off:int -> len:int -> unit) ->
  unit
(** Single sequential pass over the whole document, reporting every
    element (with its extent, once its end is reached) and every text run,
    each tagged with its parent element's offset and its position among
    the parent's children.  The root's parent offset is [-1].  Used to
    build indexes in one pass. *)
