type t =
  | Start of {
      level : int;
      pos : int;
      name : string;
      attrs : Xmlio.Event.attr list;
      key : Key.t option;
    }
  | End of { level : int; pos : int; key : Key.t option }
  | Text of { level : int; pos : int; content : string }
  | Run_ptr of {
      level : int;
      pos : int;
      key : Key.t;
      run : Extmem.Run_store.id;
      bytes : int;
    }

let level = function
  | Start { level; _ } | End { level; _ } | Text { level; _ } | Run_ptr { level; _ } -> level

let pos = function
  | Start { pos; _ } | End { pos; _ } | Text { pos; _ } | Run_ptr { pos; _ } -> pos

let sibling_key = function
  | Start { key; _ } -> Option.value key ~default:Key.Null
  | Run_ptr { key; _ } -> key
  | Text _ | End _ -> Key.Null

let tag_start = 0
let tag_end = 1
let tag_text = 2
let tag_run_ptr = 3

let put_name enc dict buf name =
  match enc with
  | Config.Plain -> Extmem.Codec.put_string buf name
  | Config.Dict | Config.Packed -> Extmem.Codec.put_varint buf (Xmlio.Dict.intern dict name)

let get_name enc dict c =
  match enc with
  | Config.Plain -> Extmem.Codec.get_string c
  | Config.Dict | Config.Packed -> Xmlio.Dict.lookup dict (Extmem.Codec.get_varint c)

let encode enc dict e =
  let buf = Buffer.create 64 in
  (match e with
  | Start { level; pos; name; attrs; key } ->
      Extmem.Codec.put_u8 buf tag_start;
      Extmem.Codec.put_varint buf level;
      Extmem.Codec.put_varint buf pos;
      put_name enc dict buf name;
      Key.encode_opt buf key;
      Extmem.Codec.put_varint buf (List.length attrs);
      List.iter
        (fun (k, v) ->
          put_name enc dict buf k;
          Extmem.Codec.put_string buf v)
        attrs
  | End { level; pos; key } ->
      Extmem.Codec.put_u8 buf tag_end;
      Extmem.Codec.put_varint buf level;
      Extmem.Codec.put_varint buf pos;
      Key.encode_opt buf key
  | Text { level; pos; content } ->
      Extmem.Codec.put_u8 buf tag_text;
      Extmem.Codec.put_varint buf level;
      Extmem.Codec.put_varint buf pos;
      Extmem.Codec.put_string buf content
  | Run_ptr { level; pos; key; run; bytes } ->
      Extmem.Codec.put_u8 buf tag_run_ptr;
      Extmem.Codec.put_varint buf level;
      Extmem.Codec.put_varint buf pos;
      Key.encode buf key;
      Extmem.Codec.put_varint buf run;
      Extmem.Codec.put_varint buf bytes);
  Buffer.contents buf

let decode enc dict s =
  let c = Extmem.Codec.cursor s in
  let tag = Extmem.Codec.get_u8 c in
  let level = Extmem.Codec.get_varint c in
  let pos = Extmem.Codec.get_varint c in
  if tag = tag_start then begin
    let name = get_name enc dict c in
    let key = Key.decode_opt c in
    let nattrs = Extmem.Codec.get_varint c in
    (* explicit loop: the order of decoding side effects matters *)
    let rec read_attrs n acc =
      if n = 0 then List.rev acc
      else begin
        let k = get_name enc dict c in
        let v = Extmem.Codec.get_string c in
        read_attrs (n - 1) ((k, v) :: acc)
      end
    in
    let attrs = read_attrs nattrs [] in
    Start { level; pos; name; attrs; key }
  end
  else if tag = tag_end then End { level; pos; key = Key.decode_opt c }
  else if tag = tag_text then Text { level; pos; content = Extmem.Codec.get_string c }
  else if tag = tag_run_ptr then begin
    let key = Key.decode c in
    let run = Extmem.Codec.get_varint c in
    let bytes = Extmem.Codec.get_varint c in
    Run_ptr { level; pos; key; run; bytes }
  end
  else raise (Extmem.Codec.Corrupt (Printf.sprintf "Entry.decode: bad tag %d" tag))

let pp ppf = function
  | Start { level; pos; name; attrs; key } ->
      Format.fprintf ppf "Start(l%d p%d <%s%s> key=%s)" level pos name
        (String.concat "" (List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) attrs))
        (match key with Some k -> Key.to_string k | None -> "-")
  | End { level; pos; key } ->
      Format.fprintf ppf "End(l%d p%d key=%s)" level pos
        (match key with Some k -> Key.to_string k | None -> "-")
  | Text { level; pos; content } -> Format.fprintf ppf "Text(l%d p%d %S)" level pos content
  | Run_ptr { level; pos; key; run; bytes } ->
      Format.fprintf ppf "Run_ptr(l%d p%d key=%s run=%d %dB)" level pos (Key.to_string key) run
        bytes
