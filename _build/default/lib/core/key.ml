type t =
  | Null
  | Num of float
  | Str of string
  | Rev of t
  | Tuple of t list

let of_string s =
  if s = "" then Str ""
  else
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Num f
    | Some _ | None -> Str s

(* rank for comparisons across constructors: Null < Num < Str < Rev < Tuple *)
let rank = function
  | Null -> 0
  | Num _ -> 1
  | Str _ -> 2
  | Rev _ -> 3
  | Tuple _ -> 4

let rec compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Num x, Num y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Rev x, Rev y -> compare y x
  | Tuple xs, Tuple ys ->
      let rec go xs ys =
        match (xs, ys) with
        | [], [] -> 0
        | [], _ :: _ -> -1
        | _ :: _, [] -> 1
        | x :: xs', y :: ys' ->
            let c = compare x y in
            if c <> 0 then c else go xs' ys'
      in
      go xs ys
  | a, b -> Stdlib.compare (rank a) (rank b)

let equal a b = compare a b = 0

let rec encode buf = function
  | Null -> Extmem.Codec.put_u8 buf 0
  | Num f ->
      Extmem.Codec.put_u8 buf 1;
      Extmem.Codec.put_f64 buf f
  | Str s ->
      Extmem.Codec.put_u8 buf 2;
      Extmem.Codec.put_string buf s
  | Rev k ->
      Extmem.Codec.put_u8 buf 3;
      encode buf k
  | Tuple ks ->
      Extmem.Codec.put_u8 buf 4;
      Extmem.Codec.put_varint buf (List.length ks);
      List.iter (encode buf) ks

let rec decode c =
  match Extmem.Codec.get_u8 c with
  | 0 -> Null
  | 1 -> Num (Extmem.Codec.get_f64 c)
  | 2 -> Str (Extmem.Codec.get_string c)
  | 3 -> Rev (decode c)
  | 4 ->
      let n = Extmem.Codec.get_varint c in
      let rec ks n acc = if n = 0 then List.rev acc else ks (n - 1) (decode c :: acc) in
      Tuple (ks n [])
  | n -> raise (Extmem.Codec.Corrupt (Printf.sprintf "Key.decode: bad tag %d" n))

let encode_opt buf = function
  | None -> Extmem.Codec.put_u8 buf 255
  | Some k -> encode buf k

let decode_opt c =
  match Extmem.Codec.get_u8 c with
  | 255 -> None
  | n ->
      (* re-dispatch on the already-consumed tag *)
      c.Extmem.Codec.pos <- c.Extmem.Codec.pos - 1;
      ignore n;
      Some (decode c)

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "<null>"
  | Num f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Rev k -> Format.fprintf ppf "desc(%a)" pp k
  | Tuple ks ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
        ks

let to_string k = Format.asprintf "%a" pp k
