lib/core/subtree_sort.mli: Entry Extmem Extsort Key Session
