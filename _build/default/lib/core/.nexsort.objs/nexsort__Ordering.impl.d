lib/core/ordering.ml: Array Buffer Format Key List Option String Xmlio
