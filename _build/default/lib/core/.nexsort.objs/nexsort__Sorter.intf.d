lib/core/sorter.mli: Config Extmem Format Ordering
