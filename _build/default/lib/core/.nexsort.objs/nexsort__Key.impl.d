lib/core/key.ml: Extmem Float Format List Printf Stdlib String
