lib/core/ordering.mli: Format Key Xmlio
