lib/core/session.mli: Config Entry Extmem Xmlio
