lib/core/session.ml: Config Entry Extmem Fun List Xmlio
