lib/core/nexsort.ml: Config Entry Key Keypath Ordering Session Sorter Subtree_sort
