lib/core/sorter.ml: Buffer Config Entry Extmem Format Key List Logs Option Ordering Session Subtree_sort Unix Xmlio
