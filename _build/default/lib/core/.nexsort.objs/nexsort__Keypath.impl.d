lib/core/keypath.ml: Buffer Extmem Float Format Key List String
