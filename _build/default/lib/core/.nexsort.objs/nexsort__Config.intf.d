lib/core/config.mli: Format Ordering
