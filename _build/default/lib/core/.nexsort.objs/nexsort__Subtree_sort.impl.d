lib/core/subtree_sort.ml: Array Buffer Config Entry Extmem Extsort Key Keypath List Option Session String
