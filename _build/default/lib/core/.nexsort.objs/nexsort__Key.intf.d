lib/core/key.mli: Buffer Extmem Format
