lib/core/entry.mli: Config Extmem Format Key Xmlio
