lib/core/entry.ml: Buffer Config Extmem Format Key List Option Printf String Xmlio
