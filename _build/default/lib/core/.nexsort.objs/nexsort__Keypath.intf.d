lib/core/keypath.mli: Format Key
