type params = {
  n_elements : int;
  elements_per_block : int;
  memory_blocks : int;
  max_fanout : int;
}

let blocks p = (p.n_elements + p.elements_per_block - 1) / p.elements_per_block

let log_ceil ~base x =
  if base <= 1. || x <= 1. then 1.
  else max 1. (log x /. log base)

let lower_bound p =
  let n = float_of_int (blocks p) in
  let m = float_of_int p.memory_blocks in
  let kb = float_of_int p.max_fanout /. float_of_int p.elements_per_block in
  if kb <= 1. then n else n *. log_ceil ~base:m kb

let nexsort_bound ~threshold_elements p =
  let n = float_of_int (blocks p) in
  let m = float_of_int p.memory_blocks in
  let kt = float_of_int (min (p.max_fanout * threshold_elements) p.n_elements) in
  let arg = kt /. float_of_int p.elements_per_block in
  n +. (n *. log_ceil ~base:m arg)

let merge_sort_bound p =
  let n = float_of_int (blocks p) in
  let m = float_of_int p.memory_blocks in
  n *. log_ceil ~base:m n

let merge_sort_passes p =
  let n = blocks p in
  let m = p.memory_blocks in
  let runs = (n + m - 1) / max 1 m in
  if runs <= 1 then 1
  else begin
    let fan_in = max 2 (m - 1) in
    let rec go runs passes = if runs <= 1 then passes else go ((runs + fan_in - 1) / fan_in) (passes + 1) in
    1 + go runs 0
  end

let within_constant_factor ?(factor = 16.) ~measured ~predicted () =
  predicted > 0. && measured > 0.
  && measured /. predicted <= factor
  && predicted /. measured <= factor
