lib/iomodel/model.mli:
