lib/iomodel/model.ml:
