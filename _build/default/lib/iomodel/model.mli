(** Analytical I/O model (§4 of the paper).

    Closed forms for the bounds proved in the paper, in the standard
    external-memory parameters:

    - [n = N/B]: input size in blocks,
    - [m = M/B]: internal memory in blocks,
    - [k]: maximum fan-out of the document tree,
    - [t]: NEXSORT's sort threshold (in elements here; callers convert).

    The benchmark harness compares these predictions against measured
    block I/Os (experiment E-lb): absolute constants are implementation
    detail, but the growth shapes — flat in [n] for NEXSORT at fixed
    fan-out, a pass added each time [n] crosses a power of [m] for merge
    sort — must match. *)

type params = {
  n_elements : int;       (** N *)
  elements_per_block : int; (** B *)
  memory_blocks : int;    (** m = M/B *)
  max_fanout : int;       (** k *)
}

val blocks : params -> int
(** [n = ceil(N/B)]. *)

val log_ceil : base:float -> float -> float
(** [log_ceil ~base x] = [max 1. (log_base x)]; the saturating logarithm
    used in all the bounds ([log < 1] means "one pass"). *)

val lower_bound : params -> float
(** Theorem 4.4: [max(n, n * log_m(k/B))] — the number of I/Os any
    XML-sorting algorithm needs in the worst case (within constants). *)

val nexsort_bound : threshold_elements:int -> params -> float
(** Theorem 4.5: [n + n * log_m(min(k*t, N)/B)] with sort threshold [t]. *)

val merge_sort_bound : params -> float
(** The flat-file bound Θ(n·log_m n) that external merge sort achieves on
    the key-path representation. *)

val merge_sort_passes : params -> int
(** Number of read-write passes a textbook external merge sort makes over
    [n] blocks of data with [m] memory blocks: one run-formation pass plus
    [ceil(log_{m-1}(ceil(n/m)))] merge passes (>= 1 whenever more than one
    run forms). *)

val within_constant_factor : ?factor:float -> measured:float -> predicted:float -> unit -> bool
(** Sanity predicate used by tests: measured/predicted lies in
    [[1/factor, factor]] (default 16).  Model constants are not the
    point; order of growth is. *)
