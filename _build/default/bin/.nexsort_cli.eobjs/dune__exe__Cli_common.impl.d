bin/cli_common.ml: Arg Cmdliner Extmem Format Fun Nexsort Printf Term
