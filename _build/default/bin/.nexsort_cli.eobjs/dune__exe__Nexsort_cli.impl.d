bin/nexsort_cli.ml: Arg Baselines Cli_common Cmd Cmdliner Extmem Fmt_tty Format List Logs Logs_fmt Nexsort Option Printf String Term Unix Xmlio
