bin/nexsort_cli.mli:
