(* DTDs: validation and dictionary preloading (§3.2 of the paper).

   Run with:  dune exec examples/dtd_validation.exe

   §3.2 notes that "the availability of a DTD can greatly simplify" the
   string-to-integer compaction NEXSORT applies to tag and attribute
   names.  This example parses a document whose DOCTYPE carries an
   internal subset, validates the document against it (content models are
   matched with Brzozowski derivatives), and preloads a dictionary with
   every declared name so compaction ids are known before the first data
   byte is scanned. *)

let document =
  {|<!DOCTYPE company [
      <!ELEMENT company (region*)>
      <!ELEMENT region (branch*)>
      <!ELEMENT branch (employee*)>
      <!ELEMENT employee (name, phone?)>
      <!ELEMENT name (#PCDATA)>
      <!ELEMENT phone (#PCDATA)>
      <!ATTLIST region name CDATA #REQUIRED>
      <!ATTLIST branch name CDATA #REQUIRED>
      <!ATTLIST employee ID CDATA #REQUIRED
                         status (active|retired) "active">
    ]>
    <company>
      <region name="AC">
        <branch name="Durham">
          <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
          <employee ID="454"><name>Jones</name></employee>
        </branch>
      </region>
    </company>|}

let broken =
  {|<company>
      <region><!-- missing required name attribute -->
        <branch name="X">
          <employee ID="1" status="fired"><phone>123</phone></employee>
        </branch>
      </region>
    </company>|}

let () =
  (* recover the DTD from the document's own DOCTYPE *)
  let parser = Xmlio.Parser.of_string document in
  let events = Xmlio.Parser.to_list parser in
  let dtd =
    match Xmlio.Parser.doctype_subset parser with
    | Some subset -> Xmlio.Dtd.parse subset
    | None -> failwith "no internal subset"
  in
  Printf.printf "DTD declares %d elements: %s\n"
    (List.length (Xmlio.Dtd.element_names dtd))
    (String.concat ", " (Xmlio.Dtd.element_names dtd));

  (* the valid document validates *)
  let tree = Xmlio.Tree.of_events events in
  (match Xmlio.Dtd.validate dtd tree with
  | [] -> print_endline "document: valid"
  | vs -> List.iter (fun v -> Printf.printf "  !? %s\n" v.Xmlio.Dtd.message) vs);

  (* a broken document gets precise complaints *)
  print_endline "broken document:";
  List.iter
    (fun v -> Printf.printf "  %s: %s\n" v.Xmlio.Dtd.element v.Xmlio.Dtd.message)
    (Xmlio.Dtd.validate dtd (Xmlio.Tree.of_string broken));

  (* dictionary preloading: every name the DTD allows gets a stable id
     before any data is scanned (the §3.2 simplification) *)
  let dict = Xmlio.Dict.create () in
  Xmlio.Dtd.preload dtd dict;
  Printf.printf "dictionary preloaded with %d names; employee = id %s\n" (Xmlio.Dict.size dict)
    (match Xmlio.Dict.find dict "employee" with
    | Some id -> string_of_int id
    | None -> "?");
  assert (Xmlio.Dtd.validate dtd tree = []);
  print_endline "OK"
