(* Batch updates by merging (§1 of the paper).

   Run with:  dune exec examples/batch_updates.exe

   A product catalogue is kept fully sorted on disk.  A nightly batch of
   updates arrives as an XML document mirroring the catalogue's shape:
   price changes (merge), discontinued items (__op="delete") and reworked
   entries (__op="replace").  Sorting the batch under the catalogue's
   ordering and merging takes one pass, and the result is sorted again —
   ready for the next night. *)

let catalogue =
  {|<catalog id="0">
      <dept id="10">
        <item id="101"><price>9</price></item>
        <item id="102"><price>12</price></item>
        <item id="103"><price>7</price></item>
      </dept>
      <dept id="20">
        <item id="201"><price>30</price></item>
        <item id="202"><price>45</price></item>
      </dept>
    </catalog>|}

let tonight's_batch =
  {|<catalog id="0">
      <dept id="20">
        <item id="202" __op="delete"/>
        <item id="203"><price>19</price></item>
      </dept>
      <dept id="10">
        <item id="103" __op="replace"><price>8</price><flag>sale</flag></item>
        <item id="999" __op="delete"/>
      </dept>
    </catalog>|}

let () =
  let ordering = Nexsort.Ordering.by_attr "id" in
  let config = Nexsort.Config.make ~block_size:128 ~memory_blocks:8 () in
  let updated, report =
    Xmerge.Batch_update.sort_and_apply_strings ~config ~ordering ~base:catalogue
      ~updates:tonight's_batch ()
  in
  print_endline "--- updated catalogue ---";
  print_endline (Xmlio.Tree.to_string ~indent:true (Xmlio.Tree.of_string updated));
  Printf.printf "deletes: %d, replaces: %d, deletes of missing items (no-ops): %d\n"
    report.Xmerge.Batch_update.deletes report.Xmerge.Batch_update.replaces
    report.Xmerge.Batch_update.unmatched_deletes;
  let t = Xmlio.Tree.of_string updated in
  assert (Baselines.Tree_sort.sorted ordering t);
  print_endline "result remains fully sorted: OK"
