(* Archiving document versions by nested merge (§2 of the paper; Buneman
   et al., SIGMOD 2002).

   Run with:  dune exec examples/archive_versions.exe

   A data provider publishes a fresh snapshot of its catalogue every
   month.  Instead of keeping every snapshot, the curator keeps ONE
   archive document: each new version is NEXSORT-sorted and merged in
   (the Nested Merge "needs to sort the input documents at every level" —
   the paper's words).  Any historical snapshot can be reconstructed
   bit-for-bit. *)

let month_1 =
  {|<catalog id="0">
      <protein id="P2"><name>kinase A</name></protein>
      <protein id="P1"><name>ligase B</name></protein>
    </catalog>|}

let month_2 =
  (* P1 renamed, P3 discovered, P2 unchanged *)
  {|<catalog id="0">
      <protein id="P3"><name>isomerase C</name></protein>
      <protein id="P1"><name>ligase B-prime</name></protein>
      <protein id="P2"><name>kinase A</name></protein>
    </catalog>|}

let month_3 =
  (* P2 dropped from the release *)
  {|<catalog id="0">
      <protein id="P1"><name>ligase B-prime</name></protein>
      <protein id="P3"><name>isomerase C</name></protein>
    </catalog>|}

let () =
  let ordering = Nexsort.Ordering.by_attr "id" in
  let config = Nexsort.Config.make ~block_size:128 ~memory_blocks:8 () in
  let archive, r1 = Xmerge.Archive.init ~config ~ordering ~version:"2026-01" month_1 in
  Printf.printf "2026-01: archived %d elements\n" r1.Xmerge.Archive.elements_added;
  let archive, r2 = Xmerge.Archive.add ~config ~ordering ~version:"2026-02" ~archive month_2 in
  Printf.printf "2026-02: %d new, %d carried, %d text variants\n"
    r2.Xmerge.Archive.elements_added r2.Xmerge.Archive.elements_carried
    r2.Xmerge.Archive.text_variants;
  let archive, r3 = Xmerge.Archive.add ~config ~ordering ~version:"2026-03" ~archive month_3 in
  Printf.printf "2026-03: %d new, %d carried\n" r3.Xmerge.Archive.elements_added
    r3.Xmerge.Archive.elements_carried;

  Printf.printf "\none archive holds %s\n"
    (String.concat ", " (Xmerge.Archive.versions archive));
  print_endline "--- the archive itself ---";
  print_endline (Xmlio.Tree.to_string ~indent:true (Xmlio.Tree.of_string archive));

  (* time travel: every snapshot is reconstructible, exactly *)
  print_endline "--- snapshot of 2026-02 ---";
  let snap = Option.get (Xmerge.Archive.extract ~version:"2026-02" archive) in
  print_endline (Xmlio.Tree.to_string ~indent:true (Xmlio.Tree.of_string snap));
  let expected =
    Baselines.Tree_sort.sort_string ordering month_2
  in
  assert (Xmlio.Tree.equal (Xmlio.Tree.of_string snap) (Xmlio.Tree.of_string expected));
  print_endline "snapshot matches the sorted 2026-02 release: OK"
