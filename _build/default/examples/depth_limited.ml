(* Depth-limited sorting (§3.2 of the paper).

   Run with:  dune exec examples/depth_limited.exe

   When merging two documents the user may know a depth below which no
   overlap is possible — sorting further is wasted work.  NEXSORT's depth
   limit stops the recursion at level d: deeper subtrees are still placed
   correctly relative to the rest of the document but keep their internal
   document order.  This example sorts the same document head-to-toe and
   with d = 2, and shows the I/O difference. *)

let () =
  (* a 4-level document: regions / branches / employees / fields *)
  let doc, stats =
    Xmlgen.Gen.to_string (fun sink ->
        Xmlgen.Gen.exact_shape ~seed:99 ~avg_bytes:80 ~fanouts:[ 8; 8; 8 ] sink)
  in
  Printf.printf "document: %d elements, height %d, %d bytes\n" stats.Xmlgen.Gen.elements
    stats.Xmlgen.Gen.height stats.Xmlgen.Gen.bytes;
  let ordering = Nexsort.Ordering.by_attr "id" in
  let run label config =
    let sorted, report = Nexsort.sort_string ~config ~ordering doc in
    Printf.printf "%-12s total I/O = %4d blocks, subtree sorts = %d\n" label
      (Extmem.Io_stats.total report.Nexsort.total_io)
      report.Nexsort.subtree_sorts;
    sorted
  in
  let full = run "head-to-toe" (Nexsort.Config.make ~block_size:512 ~memory_blocks:8 ()) in
  let limited =
    run "depth 2"
      (Nexsort.Config.make ~block_size:512 ~memory_blocks:8 ~depth_limit:2 ())
  in
  (* levels 1-2 agree between the two outputs; level-3 subtrees in the
     depth-limited output keep their original document order *)
  let full_t = Xmlio.Tree.of_string full in
  let limited_t = Xmlio.Tree.of_string limited in
  assert (Baselines.Tree_sort.sorted ~depth_limit:2 ordering limited_t);
  assert (Baselines.Tree_sort.sorted ordering full_t);
  (* top-two-level structure is identical *)
  let top_keys t =
    match t with
    | Xmlio.Tree.Element e ->
        List.filter_map
          (function
            | Xmlio.Tree.Element c -> List.assoc_opt "id" c.Xmlio.Tree.attrs
            | Xmlio.Tree.Text _ -> None)
          e.Xmlio.Tree.children
    | Xmlio.Tree.Text _ -> []
  in
  assert (top_keys full_t = top_keys limited_t);
  print_endline "depth-limited output: top levels sorted, deep levels untouched: OK"
