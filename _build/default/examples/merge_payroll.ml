(* Example 1.1 of the paper, end to end: merging the personnel and
   payroll documents of a company.

   Run with:  dune exec examples/merge_payroll.exe

   The naive nested-loop approach touches elements in an order that has
   nothing to do with how the documents sit on disk.  The sort-merge
   approach — NEXSORT both documents under the matching criterion, then a
   single simultaneous pass — is what the paper advocates.  This example
   runs it on generated documents large enough to be interesting and
   verifies employees got both their personnel and payroll data. *)

let () =
  (* Two documents over the same org structure, in unrelated orders:
     D1 has <name>/<phone> per employee, D2 has <salary>/<bonus>. *)
  let pair =
    Xmlgen.Company.generate ~seed:2026 ~regions:4 ~branches_per_region:3
      ~employees_per_branch:8 ~overlap:0.6 ()
  in
  Printf.printf "D1 (personnel): %d bytes, D2 (payroll): %d bytes\n"
    (String.length pair.Xmlgen.Company.personnel)
    (String.length pair.Xmlgen.Company.payroll);

  let ordering = Xmlgen.Company.ordering in
  let config = Nexsort.Config.make ~block_size:512 ~memory_blocks:16 () in

  (* Sort both inputs... *)
  let d1_sorted, r1 = Nexsort.sort_string ~config ~ordering pair.Xmlgen.Company.personnel in
  let d2_sorted, r2 = Nexsort.sort_string ~config ~ordering pair.Xmlgen.Company.payroll in
  Printf.printf "sorted D1 with %d subtree sorts, D2 with %d\n" r1.Nexsort.subtree_sorts
    r2.Nexsort.subtree_sorts;

  (* ...then merge them in one pass over device-resident documents, so we
     can see the single-pass I/O cost. *)
  let bs = 512 in
  let left = Extmem.Device.of_string ~block_size:bs d1_sorted in
  let right = Extmem.Device.of_string ~block_size:bs d2_sorted in
  let output = Extmem.Device.in_memory ~block_size:bs () in
  let report = Xmerge.Struct_merge.merge_devices ~ordering ~left ~right ~output () in
  Printf.printf "merge: matched %d elements; read %d + %d blocks, wrote %d blocks\n"
    report.Xmerge.Struct_merge.matched_elements
    (Extmem.Device.stats left).Extmem.Io_stats.reads
    (Extmem.Device.stats right).Extmem.Io_stats.reads
    (Extmem.Device.stats output).Extmem.Io_stats.writes;

  (* Check the join: every employee present in both inputs must now carry
     all four fields. *)
  let merged = Xmlio.Tree.of_string (Extmem.Device.contents output) in
  let complete = ref 0 and total = ref 0 in
  let rec walk = function
    | Xmlio.Tree.Text _ -> ()
    | Xmlio.Tree.Element e ->
        if e.Xmlio.Tree.name = "employee" then begin
          incr total;
          let child_names =
            List.filter_map
              (function Xmlio.Tree.Element c -> Some c.Xmlio.Tree.name | _ -> None)
              e.Xmlio.Tree.children
          in
          let has n = List.mem n child_names in
          if has "name" && has "phone" && has "salary" && has "bonus" then incr complete
        end;
        List.iter walk e.Xmlio.Tree.children
  in
  walk merged;
  Printf.printf "employees in merged document: %d, with full records: %d\n" !total !complete;
  assert (!complete > 0);
  (* the merged document is itself sorted: it can be merged again *)
  assert (Baselines.Tree_sort.sorted ordering merged);
  print_endline "merged document is sorted: OK"
