examples/batch_updates.mli:
