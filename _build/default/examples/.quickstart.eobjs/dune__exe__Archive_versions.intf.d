examples/archive_versions.mli:
