examples/quickstart.mli:
