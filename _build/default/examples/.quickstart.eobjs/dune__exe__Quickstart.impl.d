examples/quickstart.ml: Baselines Format Nexsort Xmlio
