examples/depth_limited.ml: Baselines Extmem List Nexsort Printf Xmlgen Xmlio
