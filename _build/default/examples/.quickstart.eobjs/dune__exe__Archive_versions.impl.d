examples/archive_versions.ml: Baselines Nexsort Option Printf String Xmerge Xmlio
