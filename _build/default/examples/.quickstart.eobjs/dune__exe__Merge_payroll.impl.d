examples/merge_payroll.ml: Baselines Extmem List Nexsort Printf String Xmerge Xmlgen Xmlio
