examples/dtd_validation.mli:
