examples/batch_updates.ml: Baselines Nexsort Printf Xmerge Xmlio
