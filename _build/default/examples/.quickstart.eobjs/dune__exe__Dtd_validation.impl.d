examples/dtd_validation.ml: List Printf String Xmlio
