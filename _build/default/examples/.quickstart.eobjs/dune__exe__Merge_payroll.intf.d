examples/merge_payroll.mli:
