examples/depth_limited.mli:
