(* Quickstart: fully sort a small XML document with NEXSORT.

   Run with:  dune exec examples/quickstart.exe

   "Fully sorted" means the children of EVERY element are ordered under
   the given criterion — here, regions and branches by their [name]
   attribute and employees by [ID], the running example of the paper. *)

let document =
  {|<company>
      <region name="NW">
        <branch name="Seattle">
          <employee ID="907"><name>Young</name></employee>
          <employee ID="102"><name>Jones</name></employee>
        </branch>
      </region>
      <region name="AC">
        <branch name="Durham">
          <employee ID="454"/>
          <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
        </branch>
        <branch name="Atlanta"/>
      </region>
    </company>|}

let () =
  (* 1. Describe how siblings should be ordered. *)
  let ordering =
    Nexsort.Ordering.make
      ~rules:
        [
          ("region", Nexsort.Ordering.By_attr "name");
          ("branch", Nexsort.Ordering.By_attr "name");
          ("employee", Nexsort.Ordering.By_attr "ID");
        ]
      Nexsort.Ordering.By_tag
  in
  (* 2. Pick the external-memory parameters.  Tiny values here so even
     this toy document exercises the machinery; defaults are 4 KiB blocks
     and 64 blocks of memory. *)
  let config = Nexsort.Config.make ~block_size:128 ~memory_blocks:8 () in
  (* 3. Sort. *)
  let sorted, report = Nexsort.sort_string ~config ~ordering document in
  print_endline "--- sorted document ---";
  print_endline (Xmlio.Tree.to_string ~indent:true (Xmlio.Tree.of_string sorted));
  print_endline "--- what happened ---";
  Format.printf "%a@." Nexsort.pp_report report;
  (* 4. The output satisfies the full-sortedness invariant. *)
  assert (Baselines.Tree_sort.sorted ordering (Xmlio.Tree.of_string sorted));
  print_endline "sortedness invariant: OK"
