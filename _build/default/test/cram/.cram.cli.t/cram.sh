  $ ../../bin/xmlgen_cli.exe --fanouts 3,2 --avg-bytes 40 -o doc.xml
  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id doc.xml -o sorted.xml
  $ test -s sorted.xml && echo ok
  $ ../../bin/nexsort_cli.exe -B 256 -M 8 -O @id sorted.xml -o sorted2.xml
  $ cmp sorted.xml sorted2.xml && echo identical
  $ ../../bin/nexsort_cli.exe -a mergesort -B 256 -M 8 -O @id doc.xml -o ms.xml
  $ cmp sorted.xml ms.xml && echo identical
  $ ../../bin/nexsort_cli.exe -a treesort -O @id doc.xml -o ts.xml
  $ cmp sorted.xml ts.xml && echo identical
  $ printf '<a><b></a>' > bad.xml
  $ ../../bin/nexsort_cli.exe -O @id bad.xml -o nope.xml
  $ ../../bin/xmlgen_cli.exe --company -o co
  $ ../../bin/xmlmerge_cli.exe -O '@ID,region=@name,branch=@name' co.personnel.xml co.payroll.xml -o merged.xml
  $ grep -c employee merged.xml > /dev/null && echo has-employees
  $ printf '<db id="0"><item id="1"/><item id="2"/></db>' > base.xml
  $ printf '<db id="0"><item id="2" __op="delete"/><item id="3"/></db>' > ups.xml
  $ ../../bin/xmlmerge_cli.exe --update -O @id base.xml ups.xml -o updated.xml
  $ cat updated.xml
  $ printf '<c><g id="1"><x id="3"/><x id="2"/></g><g id="2"><x id="5"/><x id="4"/></g></c>' > xs.xml
  $ ../../bin/nexsort_cli.exe -a xsort --targets g -B 256 -M 8 xs.xml -o xs1.xml
  $ cat xs1.xml
  $ ../../bin/nexsort_cli.exe -a xsort --select "//g[@id='2']" -B 256 -M 8 xs.xml -o xs2.xml
  $ cat xs2.xml
  $ printf '<r id="0"><e last="Yang" first="Jun"/><e last="Silber" first="Adam"/></r>' > comp.xml
  $ ../../bin/nexsort_cli.exe -O 'e=(@last;@first),@id' -B 256 -M 8 comp.xml -o comp_sorted.xml
  $ cat comp_sorted.xml
  $ ../../bin/nexsort_cli.exe --ordering='-@id' -B 256 -M 8 xs.xml -o desc.xml
  $ cat desc.xml
