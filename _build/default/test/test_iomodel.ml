(* Tests for the analytical I/O model (§4 of the paper). *)

let check = Alcotest.check

let params ?(n = 1_000_000) ?(b = 100) ?(m = 64) ?(k = 85) () =
  { Iomodel.Model.n_elements = n; elements_per_block = b; memory_blocks = m; max_fanout = k }

let test_blocks () =
  check Alcotest.int "exact" 10_000 (Iomodel.Model.blocks (params ()));
  check Alcotest.int "rounds up" 11 (Iomodel.Model.blocks (params ~n:1001 ~b:100 ()))

let test_log_ceil () =
  check (Alcotest.float 1e-9) "saturates below 1" 1.0 (Iomodel.Model.log_ceil ~base:10. 0.5);
  check (Alcotest.float 1e-9) "saturates at base<=1" 1.0 (Iomodel.Model.log_ceil ~base:1. 100.);
  check (Alcotest.float 1e-9) "log_10 1000" 3.0 (Iomodel.Model.log_ceil ~base:10. 1000.)

let test_lower_bound_vs_flat () =
  (* Theorem 4.4: the XML bound is no more than the flat-file bound, and
     strictly less when k << N *)
  let p = params () in
  let xml = Iomodel.Model.lower_bound p in
  let flat = Iomodel.Model.merge_sort_bound p in
  check Alcotest.bool "xml <= flat" true (xml <= flat);
  check Alcotest.bool "strictly easier here" true (xml < flat);
  (* when k/B <= 1 the bound degenerates to one scan *)
  let tiny_fanout = params ~k:10 ~b:100 () in
  check (Alcotest.float 1e-6) "scan bound"
    (float_of_int (Iomodel.Model.blocks tiny_fanout))
    (Iomodel.Model.lower_bound tiny_fanout)

let test_nexsort_bound_between () =
  (* lower bound <= NEXSORT bound, and NEXSORT <= merge sort + n (its
     extra additive scan) once the input is large relative to k*t *)
  let p = params ~n:10_000_000 () in
  let t = 2 * 100 in
  let nx = Iomodel.Model.nexsort_bound ~threshold_elements:t p in
  let lb = Iomodel.Model.lower_bound p in
  let ms = Iomodel.Model.merge_sort_bound p in
  check Alcotest.bool "lb <= nx" true (lb <= nx);
  check Alcotest.bool "nx <= ms + n" true
    (nx <= ms +. float_of_int (Iomodel.Model.blocks p))

let test_nexsort_bound_independent_of_n () =
  (* the log factor depends on k*t, not N: doubling N doubles the bound
     exactly (linearity), unlike merge sort *)
  let t = 200 in
  let p1 = params ~n:1_000_000 () in
  let p2 = params ~n:2_000_000 () in
  let nx1 = Iomodel.Model.nexsort_bound ~threshold_elements:t p1 in
  let nx2 = Iomodel.Model.nexsort_bound ~threshold_elements:t p2 in
  check (Alcotest.float 1e-6) "linear in n" 2.0 (nx2 /. nx1);
  let ms1 = Iomodel.Model.merge_sort_bound p1 in
  let ms2 = Iomodel.Model.merge_sort_bound p2 in
  check Alcotest.bool "merge sort superlinear" true (ms2 /. ms1 > 2.0)

let test_merge_sort_passes () =
  (* fits in memory: a single pass *)
  check Alcotest.int "in-memory" 1 (Iomodel.Model.merge_sort_passes (params ~n:5_000 ~m:64 ()));
  (* classic two-level case *)
  let p = params ~n:1_000_000 ~b:100 ~m:64 () in
  (* 10_000 blocks, 157 runs, fan-in 63 -> 2 merge levels + formation *)
  check Alcotest.int "three passes" 3 (Iomodel.Model.merge_sort_passes p);
  (* passes grow as memory shrinks *)
  let small = Iomodel.Model.merge_sort_passes (params ~n:1_000_000 ~m:8 ()) in
  check Alcotest.bool "more passes with less memory" true (small > 3)

let test_within_constant_factor () =
  check Alcotest.bool "close" true
    (Iomodel.Model.within_constant_factor ~measured:100. ~predicted:30. ());
  check Alcotest.bool "too far" false
    (Iomodel.Model.within_constant_factor ~measured:1000. ~predicted:10. ());
  check Alcotest.bool "custom factor" true
    (Iomodel.Model.within_constant_factor ~factor:200. ~measured:1000. ~predicted:10. ());
  check Alcotest.bool "zero predicted" false
    (Iomodel.Model.within_constant_factor ~measured:10. ~predicted:0. ())

(* measured NEXSORT I/O tracks the Theorem 4.5 bound within a constant
   factor across sizes (the E-lb experiment as a test) *)
let test_measured_within_bound () =
  let config = Nexsort.Config.make ~block_size:512 ~memory_blocks:16 () in
  let ordering = Nexsort.Ordering.by_attr "id" in
  List.iter
    (fun fanouts ->
      let xml, stats =
        Xmlgen.Gen.to_string (fun sink -> Xmlgen.Gen.exact_shape ~avg_bytes:60 ~fanouts sink)
      in
      let _, report = Nexsort.sort_string ~config ~ordering xml in
      let avg = stats.Xmlgen.Gen.bytes / max 1 stats.Xmlgen.Gen.elements in
      let p =
        {
          Iomodel.Model.n_elements = stats.Xmlgen.Gen.elements;
          elements_per_block = max 1 (512 / avg);
          memory_blocks = 16;
          max_fanout = List.fold_left max 1 fanouts;
        }
      in
      let predicted =
        Iomodel.Model.nexsort_bound ~threshold_elements:(2 * max 1 (512 / avg)) p
      in
      let measured = float_of_int (Extmem.Io_stats.total report.Nexsort.total_io) in
      check Alcotest.bool
        (Printf.sprintf "within constant factor (measured %.0f, bound %.0f)" measured predicted)
        true
        (Iomodel.Model.within_constant_factor ~measured ~predicted ()))
    [ [ 40; 10 ]; [ 40; 40 ]; [ 20; 20; 8 ] ]

let () =
  Alcotest.run "iomodel"
    [
      ( "model",
        [
          Alcotest.test_case "blocks" `Quick test_blocks;
          Alcotest.test_case "log_ceil" `Quick test_log_ceil;
          Alcotest.test_case "lower bound vs flat" `Quick test_lower_bound_vs_flat;
          Alcotest.test_case "nexsort bound between" `Quick test_nexsort_bound_between;
          Alcotest.test_case "nexsort bound linear in n" `Quick test_nexsort_bound_independent_of_n;
          Alcotest.test_case "merge sort passes" `Quick test_merge_sort_passes;
          Alcotest.test_case "within constant factor" `Quick test_within_constant_factor;
          Alcotest.test_case "measured within bound" `Quick test_measured_within_bound;
        ] );
    ]
