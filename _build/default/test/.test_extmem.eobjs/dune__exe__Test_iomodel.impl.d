test/test_iomodel.ml: Alcotest Extmem Iomodel List Nexsort Printf Xmlgen
