test/test_xmerge.ml: Alcotest Baselines Extmem List Nexsort Option Printf QCheck QCheck_alcotest String Xmerge Xmlgen Xmlio
