test/test_extsort.ml: Alcotest Array Extmem Extsort List Printf QCheck QCheck_alcotest String
