test/test_xmlio.ml: Alcotest Buffer Bytes Char Extmem List Printf QCheck QCheck_alcotest String Xmlio
