test/test_nexsort.mli:
