test/test_xmlio.mli:
