test/test_nexsort.ml: Alcotest Baselines Buffer Extmem Filename Format Fun List Nexsort Printf QCheck QCheck_alcotest String Sys Xmlgen Xmlio
