test/test_extmem.mli:
