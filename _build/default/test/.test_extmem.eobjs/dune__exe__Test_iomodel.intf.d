test/test_iomodel.mli:
