test/test_extmem.ml: Alcotest Buffer Bytes Char Extmem Filename Fun Gen Hashtbl List Printf QCheck QCheck_alcotest String Sys
