test/test_xmerge.mli:
